package uncertainty

import (
	"math"
	"math/rand"
	"testing"

	"crowdtopk/internal/dist"
	"crowdtopk/internal/numeric"
	"crowdtopk/internal/rank"
	"crowdtopk/internal/tpo"
)

// leafSet builds a normalized LeafSet from literal paths and weights.
func leafSet(k int, paths []rank.Ordering, ws []float64) *tpo.LeafSet {
	w := append([]float64(nil), ws...)
	numeric.Normalize(w)
	return &tpo.LeafSet{K: k, Paths: paths, W: w}
}

func allMeasures() []Measure {
	return []Measure{Entropy{}, NewWeightedEntropy(0), ORA{}, MPO{}}
}

func TestNewByName(t *testing.T) {
	for _, name := range []string{"H", "Hw", "ORA", "MPO", "h", "hw", "ora", "mpo"} {
		m, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if m.Name() == "" {
			t.Fatalf("New(%q) has empty name", name)
		}
	}
	if _, err := New("bogus"); err == nil {
		t.Fatal("New(bogus) must fail")
	}
}

func TestAllMeasuresZeroOnSingleOrdering(t *testing.T) {
	ls := leafSet(3, []rank.Ordering{{0, 1, 2}}, []float64{1})
	for _, m := range allMeasures() {
		if got := m.Value(ls); got != 0 {
			t.Errorf("%s on single ordering = %g, want 0", m.Name(), got)
		}
	}
}

func TestAllMeasuresZeroOnEmpty(t *testing.T) {
	ls := &tpo.LeafSet{K: 3}
	for _, m := range allMeasures() {
		if got := m.Value(ls); got != 0 {
			t.Errorf("%s on empty set = %g, want 0", m.Name(), got)
		}
	}
}

func TestAllMeasuresPositiveOnUncertainSet(t *testing.T) {
	ls := leafSet(2,
		[]rank.Ordering{{0, 1}, {1, 0}, {0, 2}, {2, 0}},
		[]float64{0.3, 0.3, 0.2, 0.2})
	for _, m := range allMeasures() {
		if got := m.Value(ls); got <= 0 {
			t.Errorf("%s on uncertain set = %g, want > 0", m.Name(), got)
		}
	}
}

func TestEntropyMatchesLeafEntropy(t *testing.T) {
	ls := leafSet(2, []rank.Ordering{{0, 1}, {1, 0}}, []float64{0.5, 0.5})
	if got := (Entropy{}).Value(ls); !numeric.AlmostEqual(got, 1, 1e-12) {
		t.Fatalf("U_H of a fair coin = %g, want 1 bit", got)
	}
}

func TestEntropyIncreasesWithEvenness(t *testing.T) {
	paths := []rank.Ordering{{0, 1}, {1, 0}}
	skewed := leafSet(2, paths, []float64{0.9, 0.1})
	even := leafSet(2, paths, []float64{0.5, 0.5})
	for _, m := range allMeasures() {
		if m.Value(even) < m.Value(skewed) {
			t.Errorf("%s: even distribution (%g) should be at least as uncertain as skewed (%g)",
				m.Name(), m.Value(even), m.Value(skewed))
		}
	}
}

func TestWeightedEntropyEmphasisesTopLevels(t *testing.T) {
	// Same leaf entropy, different location of the uncertainty: two leaf
	// sets with two equally likely orderings each. In A the orderings
	// disagree at level 1, in B only at level 2. U_Hw must rank A more
	// uncertain; U_H cannot distinguish them.
	a := leafSet(2, []rank.Ordering{{0, 1}, {1, 0}}, []float64{0.5, 0.5})
	b := leafSet(2, []rank.Ordering{{0, 1}, {0, 2}}, []float64{0.5, 0.5})
	h := Entropy{}
	if ha, hb := h.Value(a), h.Value(b); !numeric.AlmostEqual(ha, hb, 1e-12) {
		t.Fatalf("U_H should not distinguish: %g vs %g", ha, hb)
	}
	hw := NewWeightedEntropy(0)
	if wa, wb := hw.Value(a), hw.Value(b); wa <= wb {
		t.Fatalf("U_Hw: top-level disagreement %g should exceed bottom-level %g", wa, wb)
	}
}

func TestWeightedEntropyCustomDecay(t *testing.T) {
	ls := leafSet(2, []rank.Ordering{{0, 1}, {1, 0}}, []float64{0.5, 0.5})
	onlyTop := WeightedEntropy{Decay: func(l int) float64 {
		if l == 1 {
			return 1
		}
		return 0
	}}
	// Level 1 is a fair coin between 0-first and 1-first: exactly 1 bit.
	if got := onlyTop.Value(ls); !numeric.AlmostEqual(got, 1, 1e-12) {
		t.Fatalf("top-level-only U_Hw = %g, want 1", got)
	}
}

func TestMPOSmallWhenModeDominates(t *testing.T) {
	paths := []rank.Ordering{{0, 1, 2}, {0, 2, 1}, {2, 1, 0}}
	concentrated := leafSet(3, paths, []float64{0.98, 0.01, 0.01})
	spread := leafSet(3, paths, []float64{0.4, 0.3, 0.3})
	m := MPO{}
	if c, s := m.Value(concentrated), m.Value(spread); c >= s {
		t.Fatalf("U_MPO concentrated %g should be below spread %g", c, s)
	}
}

func TestORAUsesMedianNotMode(t *testing.T) {
	// Three orderings where the modal one is an outlier: ORA should sit
	// near the two close orderings, yielding a lower value than MPO which
	// anchors on the (slightly) most probable outlier.
	paths := []rank.Ordering{
		{2, 1, 0}, // modal outlier
		{0, 1, 2},
		{0, 2, 1},
	}
	ls := leafSet(3, paths, []float64{0.36, 0.33, 0.31})
	ora := ORA{}.Value(ls)
	mpo := MPO{}.Value(ls)
	if ora >= mpo {
		t.Fatalf("U_ORA %g should be below U_MPO %g when the mode is an outlier", ora, mpo)
	}
}

func TestMeasuresBoundedOnTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 10; trial++ {
		ds := make([]dist.Distribution, 5)
		for i := range ds {
			u, err := dist.NewUniformAround(rng.Float64()*1.5, 1+rng.Float64())
			if err != nil {
				t.Fatal(err)
			}
			ds[i] = u
		}
		tree, err := tpo.Build(ds, 3, tpo.BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ls := tree.LeafSet()
		maxH := math.Log2(float64(ls.Len()))
		for _, m := range allMeasures() {
			v := m.Value(ls)
			if v < 0 {
				t.Fatalf("%s negative: %g", m.Name(), v)
			}
			switch m.(type) {
			case Entropy:
				if v > maxH+1e-9 {
					t.Fatalf("U_H %g above log2(L) = %g", v, maxH)
				}
			case ORA, MPO:
				if v > 1+1e-9 {
					t.Fatalf("%s %g above 1 (normalized distance)", m.Name(), v)
				}
			}
		}
	}
}

func TestMeasureDropsAfterPruning(t *testing.T) {
	tree, err := tpo.Build(iid(t, 4), 3, tpo.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	before := tree.LeafSet()
	pruned := tree.Clone()
	if err := pruned.Prune(tpo.Answer{Q: tpo.NewQuestion(0, 1), Yes: true}); err != nil {
		t.Fatal(err)
	}
	after := pruned.LeafSet()
	for _, m := range allMeasures() {
		vb, va := m.Value(before), m.Value(after)
		if va >= vb {
			t.Errorf("%s did not drop after informative prune: %g → %g", m.Name(), vb, va)
		}
	}
}

func iid(t *testing.T, n int) []dist.Distribution {
	t.Helper()
	ds := make([]dist.Distribution, n)
	for i := range ds {
		u, err := dist.NewUniform(0, 1)
		if err != nil {
			t.Fatal(err)
		}
		ds[i] = u
	}
	return ds
}

func TestMaxDropPerQuestion(t *testing.T) {
	if (Entropy{}).MaxDropPerQuestion() != 1 {
		t.Error("entropy bound must be 1 bit")
	}
	if NewWeightedEntropy(0).MaxDropPerQuestion() != 1 {
		t.Error("weighted entropy bound must be 1 bit")
	}
	if (ORA{}).MaxDropPerQuestion() != 0 || (MPO{}).MaxDropPerQuestion() != 0 {
		t.Error("distance measures have no known bound; must return 0")
	}
}

func TestRepresentative(t *testing.T) {
	paths := []rank.Ordering{{0, 1}, {1, 0}}
	ls := leafSet(2, paths, []float64{0.7, 0.3})
	for _, m := range allMeasures() {
		rep := Representative(m, ls)
		if len(rep) != 2 {
			t.Fatalf("%s representative = %v", m.Name(), rep)
		}
	}
	// MPO representative is the modal ordering.
	if rep := Representative(MPO{}, ls); !rep.Equal(rank.Ordering{0, 1}) {
		t.Fatalf("MPO representative = %v, want modal [0 1]", rep)
	}
	if rep := Representative(Entropy{}, &tpo.LeafSet{K: 2}); rep != nil {
		t.Fatalf("empty set representative = %v, want nil", rep)
	}
}

func TestWeightedEntropyExponentVariant(t *testing.T) {
	ls := leafSet(2, []rank.Ordering{{0, 1}, {1, 0}}, []float64{0.5, 0.5})
	m1 := NewWeightedEntropy(0)
	m2 := NewWeightedEntropy(2) // steeper decay: more top-heavy
	v1, v2 := m1.Value(ls), m2.Value(ls)
	if v1 <= 0 || v2 <= 0 {
		t.Fatalf("values %g, %g must be positive", v1, v2)
	}
	// Both orderings disagree at every level here, so steeper decay cannot
	// reduce the measure below the default.
	if v2 < v1-1e-9 {
		t.Fatalf("steeper decay lowered a uniformly uncertain tree: %g < %g", v2, v1)
	}
}

func TestORAFootruleVariant(t *testing.T) {
	m, err := New("ORA-FR")
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "ORA-FR" {
		t.Fatalf("name = %q", m.Name())
	}
	// Behaves like a measure: zero on certainty, positive on spread, and
	// close to the exact-Kemeny ORA on small sets (footrule 2-approximates
	// the median, and on near-consensus sets the aggregates coincide).
	single := leafSet(2, []rank.Ordering{{0, 1}}, []float64{1})
	if v := m.Value(single); v != 0 {
		t.Fatalf("single ordering = %g", v)
	}
	spread := leafSet(3,
		[]rank.Ordering{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}},
		[]float64{0.5, 0.3, 0.2})
	vFR := m.Value(spread)
	vK := (ORA{}).Value(spread)
	if vFR <= 0 {
		t.Fatalf("spread set = %g", vFR)
	}
	// Footrule anchor can differ from the Kemeny anchor, but not wildly.
	if vFR > 3*vK+1e-9 {
		t.Fatalf("footrule ORA %g far above Kemeny ORA %g", vFR, vK)
	}
}

func TestNewRejectsWithHelpfulMessage(t *testing.T) {
	_, err := New("kendall")
	if err == nil {
		t.Fatal("unknown measure accepted")
	}
}
