// Package uncertainty implements the paper's four measures of the residual
// uncertainty of a tree of possible orderings T_K (§II): Shannon entropy of
// the leaf distribution (U_H), the level-weighted entropy (U_Hw), and the
// expected distance of the orderings to a representative ordering — the
// Optimal Rank Aggregation (U_ORA) or the Most Probable Ordering (U_MPO).
//
// All measures operate on the flat LeafSet view, vanish exactly when a
// single ordering remains, and grow with both the number of orderings and
// the evenness of their probabilities.
package uncertainty

import (
	"fmt"
	"strings"

	"crowdtopk/internal/numeric"
	"crowdtopk/internal/rank"
	"crowdtopk/internal/tpo"
)

// Measure quantifies the uncertainty of a (normalized) leaf set.
type Measure interface {
	// Name returns the identifier used in CLI flags and reports
	// ("H", "Hw", "ORA", "MPO").
	Name() string
	// Value computes the uncertainty of a normalized leaf set. A set with
	// at most one ordering has uncertainty 0 under every measure.
	Value(ls *tpo.LeafSet) float64
	// MaxDropPerQuestion returns an upper bound on how much the expected
	// value of the measure can decrease by asking one binary question, or 0
	// when no such bound is known. It is the admissible-heuristic slope for
	// the A* strategies: entropy-type measures return 1 (one bit).
	MaxDropPerQuestion() float64
}

// New returns the measure with the given name: "H", "Hw", "ORA" or "MPO"
// (case-insensitive).
func New(name string) (Measure, error) {
	switch strings.ToUpper(name) {
	case "H":
		return Entropy{}, nil
	case "HW":
		return NewWeightedEntropy(0), nil
	case "ORA":
		return ORA{Penalty: rank.DefaultPenalty}, nil
	case "ORA-FR":
		return ORA{Penalty: rank.DefaultPenalty, Footrule: true}, nil
	case "MPO":
		return MPO{Penalty: rank.DefaultPenalty}, nil
	default:
		return nil, fmt.Errorf("uncertainty: unknown measure %q (want H, Hw, ORA, ORA-FR or MPO)", name)
	}
}

// Entropy is U_H: the Shannon entropy, in bits, of the leaf (ordering)
// probabilities. It ignores the structure of the tree — the state-of-the-art
// baseline the structure-aware measures are compared against.
type Entropy struct{}

// Name implements Measure.
func (Entropy) Name() string { return "H" }

// Value implements Measure.
func (Entropy) Value(ls *tpo.LeafSet) float64 { return numeric.EntropyBits(ls.W) }

// MaxDropPerQuestion implements Measure: a binary answer carries one bit.
func (Entropy) MaxDropPerQuestion() float64 { return 1 }

// WeightedEntropy is U_Hw: a weighted combination of the entropies of the
// marginal prefix distributions at each of the first K levels of the TPO,
// emphasising uncertainty close to the top of the ranking. Level l receives
// weight proportional to 1/l (normalized), matching the paper's intent that
// earlier ranks matter more; the exact decay is configurable.
type WeightedEntropy struct {
	// Decay maps level l (1-based) to its unnormalized weight. nil selects
	// the default 1/l.
	Decay func(level int) float64
}

// NewWeightedEntropy returns U_Hw with the default 1/l level weights. The
// argument is reserved for future decay parameterisations and is currently
// ignored unless non-zero, in which case weights are l^(-exponent).
func NewWeightedEntropy(exponent float64) WeightedEntropy {
	if exponent == 0 {
		return WeightedEntropy{}
	}
	return WeightedEntropy{Decay: func(l int) float64 {
		w := 1.0
		for i := 0; i < int(exponent); i++ {
			w /= float64(l)
		}
		return w
	}}
}

// Name implements Measure.
func (WeightedEntropy) Name() string { return "Hw" }

// MaxDropPerQuestion implements Measure: each level entropy drops at most
// one bit per binary question and the level weights are normalized.
func (WeightedEntropy) MaxDropPerQuestion() float64 { return 1 }

// Value implements Measure.
func (w WeightedEntropy) Value(ls *tpo.LeafSet) float64 {
	if ls.Len() <= 1 || ls.K == 0 {
		return 0
	}
	decay := w.Decay
	if decay == nil {
		decay = func(l int) float64 { return 1 / float64(l) }
	}
	var totalW, acc float64
	// Entropy of the aggregated prefix distribution at each level.
	for l := 1; l <= ls.K; l++ {
		group := make(map[string]float64, ls.Len())
		for i, p := range ls.Paths {
			group[prefixKey(p, l)] += ls.W[i]
		}
		ws := make([]float64, 0, len(group))
		for _, v := range group {
			ws = append(ws, v)
		}
		wl := decay(l)
		totalW += wl
		acc += wl * numeric.EntropyBits(ws)
	}
	if totalW == 0 {
		return 0
	}
	return acc / totalW
}

func prefixKey(p rank.Ordering, l int) string {
	if l > len(p) {
		l = len(p)
	}
	var b strings.Builder
	for _, id := range p[:l] {
		fmt.Fprintf(&b, "%d,", id)
	}
	return b.String()
}

// ORA is U_ORA: the probability-weighted mean generalized Kendall distance
// of the orderings to the Optimal Rank Aggregation (the Kemeny median of the
// leaf set). Computing it requires a rank aggregation per evaluation, which
// makes it the most expensive measure — matching the paper's cost figures.
type ORA struct {
	// Penalty is the K^(p) undetermined-pair penalty (default 1/2).
	Penalty float64
	// Footrule switches the aggregation from Kemeny (exact up to
	// rank.MaxExactKemeny items, local search beyond) to footrule-optimal
	// aggregation via min-cost assignment — a polynomial-time
	// 2-approximation of the Kemeny median that scales to trees with many
	// distinct tuples.
	Footrule bool
}

// Name implements Measure.
func (o ORA) Name() string {
	if o.Footrule {
		return "ORA-FR"
	}
	return "ORA"
}

// MaxDropPerQuestion implements Measure: no admissible per-question bound is
// known for distance-based measures.
func (ORA) MaxDropPerQuestion() float64 { return 0 }

// Value implements Measure.
func (o ORA) Value(ls *tpo.LeafSet) float64 {
	if ls.Len() <= 1 {
		return 0
	}
	var agg rank.Ordering
	var err error
	if o.Footrule {
		agg, err = rank.FootruleAggregate(ls.Paths, ls.W)
	} else {
		agg, err = rank.Aggregate(ls.Paths, ls.W)
	}
	if err != nil {
		// Weights are non-negative by construction; aggregation cannot
		// fail on leaf sets. Treat a failure as maximal uncertainty so
		// that it cannot be mistaken for a resolved tree.
		return 1
	}
	return expectedDistance(ls, agg.Prefix(ls.K), o.Penalty)
}

// MPO is U_MPO: the probability-weighted mean generalized Kendall distance
// of the orderings to the Most Probable Ordering (the modal leaf).
type MPO struct {
	// Penalty is the K^(p) undetermined-pair penalty (default 1/2).
	Penalty float64
}

// Name implements Measure.
func (MPO) Name() string { return "MPO" }

// MaxDropPerQuestion implements Measure.
func (MPO) MaxDropPerQuestion() float64 { return 0 }

// Value implements Measure.
func (m MPO) Value(ls *tpo.LeafSet) float64 {
	if ls.Len() <= 1 {
		return 0
	}
	mpo := ls.Paths[ls.MostProbable()]
	return expectedDistance(ls, mpo, m.Penalty)
}

// expectedDistance returns Σ_ω w(ω)·K^(p)(ω, ref) over the normalized leaf
// set, using a precomputed-reference distancer to keep the per-leaf cost
// allocation-free.
func expectedDistance(ls *tpo.LeafSet, ref rank.Ordering, penalty float64) float64 {
	if penalty == 0 {
		penalty = rank.DefaultPenalty
	}
	d := rank.NewTopKDist(ref, penalty)
	var acc numeric.KahanSum
	for i, p := range ls.Paths {
		if ls.W[i] == 0 {
			continue
		}
		acc.Add(ls.W[i] * d.Normalized(p))
	}
	return acc.Sum()
}

// Representative returns the ordering a measure would report as the query
// answer for the current tree: the ORA for U_ORA, the MPO otherwise.
// This is what an application returns to its user after the question budget
// is exhausted.
func Representative(m Measure, ls *tpo.LeafSet) rank.Ordering {
	if ls.Len() == 0 {
		return nil
	}
	if _, isORA := m.(ORA); isORA {
		if ora, err := rank.Aggregate(ls.Paths, ls.W); err == nil {
			return ora.Prefix(ls.K)
		}
	}
	return ls.Paths[ls.MostProbable()].Clone()
}
