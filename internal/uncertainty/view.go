package uncertainty

import (
	"math"

	"crowdtopk/internal/numeric"
	"crowdtopk/internal/rank"
	"crowdtopk/internal/tpo"
)

// View is a read-only, already-normalized view of a leaf multiset. It is the
// normalization-free counterpart of *tpo.LeafSet: the expected-residual
// sweeps evaluate measures over partition cells thousands of times per
// question batch, and materializing a normalized LeafSet copy per evaluation
// dominated both time and allocations. A View exposes the same information
// without owning any of it.
type View interface {
	// K is the query depth (the length of complete leaf paths).
	K() int
	// Len returns the number of leaves.
	Len() int
	// Weight returns the i-th leaf's normalized probability.
	Weight(i int) float64
	// Path returns the i-th leaf ordering. The returned slice aliases shared
	// storage: callers must neither mutate it nor retain it past the
	// evaluation.
	Path(i int) rank.Ordering
}

// PrefixGrouper is implemented by views that can identify leaves sharing a
// path prefix in O(1) — precomputed dense group ids per level. U_Hw uses it
// to aggregate the per-level prefix marginals without hashing paths.
type PrefixGrouper interface {
	// PrefixGroup returns an id g such that two leaves carry the same g iff
	// their paths agree on the first `level` entries. Ids are dense in
	// [0, GroupCount(level)). level is 1-based.
	PrefixGroup(level, i int) int32
	// GroupCount returns the number of distinct level-prefixes.
	GroupCount(level int) int
}

// LeafIdentifier is implemented by views whose leaves come from a fixed,
// shared universe with stable identities — the partition cells of one
// residual sweep all reference the same arena. U_MPO exploits it: when the
// reference ordering is itself a universe leaf, the view supplies the
// normalized distances of every universe leaf to that reference from a
// cache shared by every cell (and every worker) of the sweep, replacing a
// Kendall evaluation per (cell, leaf) with a dot product.
type LeafIdentifier interface {
	View
	// LeafID returns the i-th leaf's stable universe id.
	LeafID(i int) int32
	// DistRow returns normalized distances of every universe leaf (indexed
	// by leaf id) to the reference leaf. The row is shared and must not be
	// mutated; implementations cache and must be safe for concurrent calls.
	DistRow(refID int32, penalty float64) []float64
}

// Scratch holds the reusable buffers that make ValueView evaluation
// allocation-free after warm-up. It is not safe for concurrent use: parallel
// sweeps keep one Scratch per worker. A nil *Scratch is valid and simply
// allocates on every call.
type Scratch struct {
	sums    []float64
	paths   []rank.Ordering
	weights []float64
	dist    *rank.TopKDist
}

// sumsBuf returns a zeroed float buffer of length n.
func (s *Scratch) sumsBuf(n int) []float64 {
	if s == nil {
		return make([]float64, n)
	}
	if cap(s.sums) < n {
		s.sums = make([]float64, n)
		return s.sums
	}
	buf := s.sums[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// listBufs returns path/weight buffers of length n for aggregation inputs.
func (s *Scratch) listBufs(n int) ([]rank.Ordering, []float64) {
	if s == nil {
		return make([]rank.Ordering, n), make([]float64, n)
	}
	if cap(s.paths) < n {
		s.paths = make([]rank.Ordering, n)
	}
	if cap(s.weights) < n {
		s.weights = make([]float64, n)
	}
	return s.paths[:n], s.weights[:n]
}

// distancer returns a TopKDist referenced at ref, reusing the scratch's
// instance when possible.
func (s *Scratch) distancer(ref rank.Ordering, penalty float64) *rank.TopKDist {
	if s == nil {
		return rank.NewTopKDist(ref, penalty)
	}
	if s.dist == nil {
		s.dist = rank.NewTopKDist(ref, penalty)
	} else {
		s.dist.Reset(ref, penalty)
	}
	return s.dist
}

// ViewMeasure is a Measure that can evaluate a View in place, without a
// normalized LeafSet copy. All measures in this package implement it.
type ViewMeasure interface {
	Measure
	// ValueView computes the measure over the view, using scratch (which may
	// be nil) for temporary storage. It returns exactly what Value returns
	// on the materialized equivalent, up to floating-point association noise
	// far below selection's tie epsilon.
	ValueView(v View, s *Scratch) float64
}

// ValueOf evaluates m over v, taking the in-place path when m supports it
// and materializing a LeafSet otherwise (third-party measures).
func ValueOf(m Measure, v View, s *Scratch) float64 {
	if vm, ok := m.(ViewMeasure); ok {
		return vm.ValueView(v, s)
	}
	return m.Value(Materialize(v))
}

// Materialize copies a view into a standalone LeafSet.
func Materialize(v View) *tpo.LeafSet {
	n := v.Len()
	ls := &tpo.LeafSet{
		K:     v.K(),
		Paths: make([]rank.Ordering, n),
		W:     make([]float64, n),
	}
	for i := 0; i < n; i++ {
		ls.Paths[i] = v.Path(i).Clone()
		ls.W[i] = v.Weight(i)
	}
	return ls
}

// ValueView implements ViewMeasure: the same compensated −Σ w·log2 w as
// numeric.EntropyBits, fed directly from the view's normalized weights.
func (Entropy) ValueView(v View, _ *Scratch) float64 {
	var k numeric.KahanSum
	for i, n := 0, v.Len(); i < n; i++ {
		if w := v.Weight(i); w > 0 {
			k.Add(-w * math.Log2(w))
		}
	}
	h := k.Sum()
	if h < 0 { // rounding can produce e.g. -1e-17 on a singleton
		return 0
	}
	return h
}

// ValueView implements ViewMeasure. When the view can group prefixes, the
// per-level marginals are accumulated into a dense scratch vector instead of
// a string-keyed map; otherwise it falls back to the materialized path.
func (w WeightedEntropy) ValueView(v View, s *Scratch) float64 {
	if v.Len() <= 1 || v.K() == 0 {
		return 0
	}
	g, ok := v.(PrefixGrouper)
	if !ok {
		return w.Value(Materialize(v))
	}
	decay := w.Decay
	if decay == nil {
		decay = func(l int) float64 { return 1 / float64(l) }
	}
	n := v.Len()
	var totalW, acc float64
	for l := 1; l <= v.K(); l++ {
		sums := s.sumsBuf(g.GroupCount(l))
		for i := 0; i < n; i++ {
			sums[g.PrefixGroup(l, i)] += v.Weight(i)
		}
		wl := decay(l)
		totalW += wl
		acc += wl * numeric.EntropyBits(sums) // groups absent from the view sum to 0 and vanish
	}
	if totalW == 0 {
		return 0
	}
	return acc / totalW
}

// ValueView implements ViewMeasure. The aggregation input is assembled from
// zero-copy path headers; only the aggregation itself allocates.
func (o ORA) ValueView(v View, s *Scratch) float64 {
	if v.Len() <= 1 {
		return 0
	}
	n := v.Len()
	paths, weights := s.listBufs(n)
	for i := 0; i < n; i++ {
		paths[i] = v.Path(i)
		weights[i] = v.Weight(i)
	}
	var agg rank.Ordering
	var err error
	if o.Footrule {
		agg, err = rank.FootruleAggregate(paths, weights)
	} else {
		agg, err = rank.Aggregate(paths, weights)
	}
	if err != nil {
		// Weights are non-negative by construction; aggregation cannot
		// fail on leaf sets. Treat a failure as maximal uncertainty so
		// that it cannot be mistaken for a resolved tree.
		return 1
	}
	return expectedDistanceView(v, agg.Prefix(v.K()), o.Penalty, s)
}

// ValueView implements ViewMeasure. Views with stable leaf identities take
// the cached-distance-row path: the MPO reference is always one of the
// universe's leaves, and residual sweeps re-reference the same few heavy
// leaves across most partition cells.
func (m MPO) ValueView(v View, s *Scratch) float64 {
	if v.Len() <= 1 {
		return 0
	}
	best, bw := 0, v.Weight(0)
	for i, n := 1, v.Len(); i < n; i++ {
		if w := v.Weight(i); w > bw { // first on ties, as numeric.ArgMax
			best, bw = i, w
		}
	}
	if li, ok := v.(LeafIdentifier); ok {
		penalty := m.Penalty
		if penalty == 0 {
			penalty = rank.DefaultPenalty
		}
		row := li.DistRow(li.LeafID(best), penalty)
		var acc numeric.KahanSum
		for i, n := 0, v.Len(); i < n; i++ {
			w := v.Weight(i)
			if w == 0 {
				continue
			}
			acc.Add(w * row[li.LeafID(i)])
		}
		return acc.Sum()
	}
	return expectedDistanceView(v, v.Path(best), m.Penalty, s)
}

// expectedDistanceView is expectedDistance over a View, reusing the
// scratch's distancer instead of allocating one per evaluation.
func expectedDistanceView(v View, ref rank.Ordering, penalty float64, s *Scratch) float64 {
	if penalty == 0 {
		penalty = rank.DefaultPenalty
	}
	d := s.distancer(ref, penalty)
	var acc numeric.KahanSum
	for i, n := 0, v.Len(); i < n; i++ {
		w := v.Weight(i)
		if w == 0 {
			continue
		}
		acc.Add(w * d.Normalized(v.Path(i)))
	}
	return acc.Sum()
}
