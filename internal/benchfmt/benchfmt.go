// Package benchfmt holds the machine-readable benchmark report schema shared
// by cmd/benchreport (which records the Go-benchmark families into
// BENCH_selection.json) and the loadgen capacity harness (which records
// serving throughput and latency percentiles into BENCH_serve.json). One
// schema means one set of tooling can diff either file.
package benchfmt

import (
	"encoding/json"
	"os"
)

// Result is one benchmark line: a Go testing benchmark, or one synthesized
// measurement (loadgen emits one per concurrency level and route).
type Result struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iterations"`
	NsPerOp float64            `json:"ns_per_op"`
	BPerOp  float64            `json:"bytes_per_op,omitempty"`
	Allocs  float64            `json:"allocs_per_op,omitempty"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the file schema.
type Report struct {
	Bench     string   `json:"bench"`
	Benchtime string   `json:"benchtime"`
	GoOS      string   `json:"goos,omitempty"`
	GoArch    string   `json:"goarch,omitempty"`
	CPU       string   `json:"cpu,omitempty"`
	Results   []Result `json:"results"`
}

// WriteFile marshals the report (indented, trailing newline) to path.
func WriteFile(path string, rep *Report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads a report written by WriteFile.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}
