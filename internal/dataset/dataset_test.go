package dataset

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"crowdtopk/internal/dist"
	"crowdtopk/internal/numeric"
)

func TestGenerateDefaults(t *testing.T) {
	ds, err := Generate(Spec{N: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 10 {
		t.Fatalf("generated %d tuples", len(ds))
	}
	for i, d := range ds {
		if _, ok := d.(*dist.Uniform); !ok {
			t.Fatalf("tuple %d: default family is %T, want uniform", i, d)
		}
		if w := dist.Width(d); !numeric.AlmostEqual(w, 2.0, 1e-9) {
			t.Fatalf("tuple %d width %g, want default 2.0", i, w)
		}
	}
	// Centers drift upward with the id.
	if ds[9].Mean() <= ds[0].Mean() {
		t.Fatal("expected increasing score centers with tuple id")
	}
}

func TestGenerateFamilies(t *testing.T) {
	for _, f := range []Family{Uniform, Gaussian, Triangular} {
		ds, err := Generate(Spec{N: 5, Family: f, Seed: 2})
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if len(ds) != 5 {
			t.Fatalf("%s: %d tuples", f, len(ds))
		}
	}
	if _, err := Generate(Spec{N: 3, Family: "cauchy"}); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("unknown family err = %v", err)
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []Spec{
		{N: 0},
		{N: 3, Width: -1},
		{N: 3, Jitter: -0.5},
		{N: 3, HeteroWidth: 1.5},
		{N: 3, Spacing: -2},
	}
	for i, s := range bad {
		if _, err := Generate(s); !errors.Is(err, ErrBadSpec) {
			t.Errorf("spec %d: err = %v, want ErrBadSpec", i, err)
		}
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	a, err := Generate(Spec{N: 6, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Spec{N: 6, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Generate(Spec{N: 6, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Mean() != b[i].Mean() {
			t.Fatal("same seed produced different datasets")
		}
	}
	same := true
	for i := range a {
		if a[i].Mean() != c[i].Mean() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical datasets")
	}
}

func TestGenerateHeteroWidths(t *testing.T) {
	ds, err := Generate(Spec{N: 20, HeteroWidth: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	minW, maxW := dist.Width(ds[0]), dist.Width(ds[0])
	for _, d := range ds[1:] {
		w := dist.Width(d)
		if w < minW {
			minW = w
		}
		if w > maxW {
			maxW = w
		}
	}
	if maxW-minW < 0.1 {
		t.Fatalf("widths too homogeneous: [%g, %g]", minW, maxW)
	}
	if minW < 2.0*0.5-1e-9 || maxW > 2.0*1.5+1e-9 {
		t.Fatalf("widths outside spec bounds: [%g, %g]", minW, maxW)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	var ds []dist.Distribution
	u, _ := dist.NewUniform(0, 1.5)
	g, _ := dist.NewGaussian(2, 0.25)
	tr, _ := dist.NewTriangular(-1, 0, 2)
	ds = append(ds, u, g, tr)

	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(ds) {
		t.Fatalf("round trip count %d vs %d", len(back), len(ds))
	}
	for i := range ds {
		lo1, hi1 := ds[i].Support()
		lo2, hi2 := back[i].Support()
		if !numeric.AlmostEqual(lo1, lo2, 1e-12) || !numeric.AlmostEqual(hi1, hi2, 1e-12) {
			t.Fatalf("tuple %d support changed: [%g,%g] vs [%g,%g]", i, lo1, hi1, lo2, hi2)
		}
		if !numeric.AlmostEqual(ds[i].Mean(), back[i].Mean(), 1e-12) {
			t.Fatalf("tuple %d mean changed", i)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"unknown family", "family,p1,p2,p3\nlaplace,0,1,\n"},
		{"bad number", "family,p1,p2,p3\nuniform,zero,1,\n"},
		{"too few fields", "family,p1\nuniform,0\n"},
		{"triangular missing param", "family,p1,p2,p3\ntriangular,0,1\n"},
		{"invalid uniform", "family,p1,p2,p3\nuniform,2,1,\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(c.in)); err == nil {
				t.Fatalf("ReadCSV(%q) succeeded", c.in)
			}
		})
	}
}

func TestReadCSVWithoutHeader(t *testing.T) {
	in := "uniform,0,1,\nuniform,0.5,2,\n"
	ds, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2 {
		t.Fatalf("got %d tuples", len(ds))
	}
}

func TestWriteCSVRejectsUnserializableFamily(t *testing.T) {
	p, err := dist.NewPiecewiseUniform([]float64{0, 1}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []dist.Distribution{p}); err == nil {
		t.Fatal("piecewise histogram serialization should be rejected")
	}
}

func TestGenerateOverlapControls(t *testing.T) {
	// Wider supports at fixed spacing must increase pairwise overlap.
	narrow, err := Generate(Spec{N: 8, Width: 0.4, Jitter: 1e-9, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Generate(Spec{N: 8, Width: 3, Jitter: 1e-9, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	countOverlaps := func(ds []dist.Distribution) int {
		n := 0
		for i := range ds {
			for j := i + 1; j < len(ds); j++ {
				if dist.Overlaps(ds[i], ds[j]) {
					n++
				}
			}
		}
		return n
	}
	if countOverlaps(wide) <= countOverlaps(narrow) {
		t.Fatal("width did not increase overlap")
	}
}
