package dataset

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"

	"crowdtopk/internal/dist"
)

// DistSpec is the wire form of one uncertain score distribution: the
// family-tagged parameter vector exchanged by the HTTP serving layer and
// embedded in session checkpoints. Unlike the CSV codec (WriteCSV/ReadCSV,
// kept for the experiment tooling) it covers every family the kernel
// implements.
//
// Families and parameters:
//
//	uniform     params = [lo, hi]
//	gaussian    params = [mu, sigma]
//	triangular  params = [lo, mode, hi]
//	point       params = [x]
//	histogram   edges (len = bins+1) and weights (len = bins)
type DistSpec struct {
	Family  string    `json:"family"`
	Params  []float64 `json:"params,omitempty"`
	Edges   []float64 `json:"edges,omitempty"`
	Weights []float64 `json:"weights,omitempty"`
}

// SpecOf returns the wire form of a kernel distribution.
func SpecOf(d dist.Distribution) (DistSpec, error) {
	switch v := d.(type) {
	case *dist.Uniform:
		return DistSpec{Family: "uniform", Params: []float64{v.Lo, v.Hi}}, nil
	case *dist.Gaussian:
		return DistSpec{Family: "gaussian", Params: []float64{v.Mu, v.Sigma}}, nil
	case *dist.Triangular:
		return DistSpec{Family: "triangular", Params: []float64{v.Lo, v.Mode, v.Hi}}, nil
	case *dist.Point:
		return DistSpec{Family: "point", Params: []float64{v.X}}, nil
	case *dist.PiecewiseUniform:
		return DistSpec{Family: "histogram", Edges: v.Edges(), Weights: v.Weights()}, nil
	default:
		return DistSpec{}, fmt.Errorf("dataset: distribution %T has no wire form", d)
	}
}

// Distribution reconstructs the kernel distribution the spec describes,
// re-running the family constructor's validation.
func (s DistSpec) Distribution() (dist.Distribution, error) {
	need := func(n int) error {
		if len(s.Params) != n {
			return fmt.Errorf("dataset: family %q needs %d params, got %d", s.Family, n, len(s.Params))
		}
		return nil
	}
	switch s.Family {
	case "uniform":
		if err := need(2); err != nil {
			return nil, err
		}
		return dist.NewUniform(s.Params[0], s.Params[1])
	case "gaussian":
		if err := need(2); err != nil {
			return nil, err
		}
		return dist.NewGaussian(s.Params[0], s.Params[1])
	case "triangular":
		if err := need(3); err != nil {
			return nil, err
		}
		return dist.NewTriangular(s.Params[0], s.Params[1], s.Params[2])
	case "point":
		if err := need(1); err != nil {
			return nil, err
		}
		return dist.NewPoint(s.Params[0]), nil
	case "histogram":
		return dist.NewPiecewiseUniform(s.Edges, s.Weights)
	default:
		return nil, fmt.Errorf("dataset: unknown distribution family %q", s.Family)
	}
}

// SpecsOf converts a dataset to wire form.
func SpecsOf(ds []dist.Distribution) ([]DistSpec, error) {
	specs := make([]DistSpec, len(ds))
	for i, d := range ds {
		s, err := SpecOf(d)
		if err != nil {
			return nil, fmt.Errorf("tuple %d: %w", i, err)
		}
		specs[i] = s
	}
	return specs, nil
}

// FromSpecs reconstructs a dataset from wire form.
func FromSpecs(specs []DistSpec) ([]dist.Distribution, error) {
	ds := make([]dist.Distribution, len(specs))
	for i, s := range specs {
		d, err := s.Distribution()
		if err != nil {
			return nil, fmt.Errorf("tuple %d: %w", i, err)
		}
		ds[i] = d
	}
	return ds, nil
}

// Digest returns a content hash ("sha256:…") of the dataset's wire form.
// Checkpoint envelopes carry it so a restore against a different dataset is
// rejected instead of silently mis-resuming: histogram weights are
// normalized by their constructor and JSON float encoding is the shortest
// round-trip form, so any two datasets with identical score models hash
// identically regardless of how they were loaded.
func Digest(ds []dist.Distribution) (string, error) {
	specs, err := SpecsOf(ds)
	if err != nil {
		return "", err
	}
	raw, err := json.Marshal(specs)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("sha256:%x", sha256.Sum256(raw)), nil
}
