package dataset

import (
	"encoding/json"
	"strings"
	"testing"

	"crowdtopk/internal/dist"
)

func specFixture(t *testing.T) []dist.Distribution {
	t.Helper()
	u, err := dist.NewUniform(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, err := dist.NewGaussian(0.5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := dist.NewTriangular(0, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	pw, err := dist.NewPiecewiseUniform([]float64{0, 0.5, 1}, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	return []dist.Distribution{u, g, tr, pw, dist.NewPoint(0.25)}
}

// TestSpecRoundTrip: every serializable family survives
// distribution → spec → JSON → spec → distribution with identical behavior.
func TestSpecRoundTrip(t *testing.T) {
	ds := specFixture(t)
	specs, err := SpecsOf(ds)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(specs)
	if err != nil {
		t.Fatal(err)
	}
	var decoded []DistSpec
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	back, err := FromSpecs(decoded)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds {
		glo, ghi := ds[i].Support()
		blo, bhi := back[i].Support()
		if glo != blo || ghi != bhi || ds[i].Mean() != back[i].Mean() {
			t.Errorf("tuple %d: support/mean drift after round trip: (%g,%g,%g) vs (%g,%g,%g)",
				i, glo, ghi, ds[i].Mean(), blo, bhi, back[i].Mean())
		}
		for _, x := range []float64{-0.1, 0.2, 0.5, 0.77, 1.1} {
			if ds[i].CDF(x) != back[i].CDF(x) {
				t.Errorf("tuple %d: CDF(%g) drift: %g vs %g", i, x, ds[i].CDF(x), back[i].CDF(x))
			}
		}
	}
}

func TestSpecRejectsBadInput(t *testing.T) {
	bad := []DistSpec{
		{Family: "uniform", Params: []float64{1}},
		{Family: "uniform", Params: []float64{2, 1}},
		{Family: "nope", Params: []float64{1, 2}},
		{Family: "histogram", Edges: []float64{0, 1}, Weights: []float64{}},
	}
	for i, s := range bad {
		if _, err := s.Distribution(); err == nil {
			t.Errorf("spec %d (%+v): expected error", i, s)
		}
	}
}

// TestDigest: equal score models hash equal regardless of construction
// route; different models hash different.
func TestDigest(t *testing.T) {
	ds := specFixture(t)
	d1, err := Digest(ds)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(d1, "sha256:") {
		t.Fatalf("digest %q lacks algorithm prefix", d1)
	}
	// Reload through the wire form: digest must be identical.
	specs, _ := SpecsOf(ds)
	back, err := FromSpecs(specs)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Digest(back)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("digest changed across round trip: %s vs %s", d1, d2)
	}
	// Perturb one parameter: digest must change.
	u, _ := dist.NewUniform(0, 1.0000001)
	other := append(append([]dist.Distribution(nil), ds[1:]...), u)
	d3, err := Digest(other)
	if err != nil {
		t.Fatal(err)
	}
	if d3 == d1 {
		t.Fatal("different datasets produced the same digest")
	}
}
