// Package dataset generates the synthetic uncertain-score workloads of the
// paper's evaluation (§IV) and loads/stores them as CSV. Workloads are
// parameterized by the score-distribution family, the spacing of the score
// centers, and the support width — the width/spacing ratio controls how many
// orderings the TPO admits and therefore the hardness of the instance.
package dataset

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strconv"

	"crowdtopk/internal/dist"
)

// Family names a score-distribution family.
type Family string

// Supported families.
const (
	Uniform    Family = "uniform"
	Gaussian   Family = "gaussian"
	Triangular Family = "triangular"
)

// ErrBadSpec reports an unusable generation spec.
var ErrBadSpec = errors.New("dataset: invalid spec")

// Spec describes a synthetic workload.
type Spec struct {
	// N is the number of tuples.
	N int
	// Family selects the distribution family (default Uniform).
	Family Family
	// Spacing is the distance between consecutive score centers
	// (default 0.5).
	Spacing float64
	// Width is the support width of each tuple's distribution (for
	// Gaussian it is interpreted as 4σ on each side, i.e. the support is
	// Width wide in total). Default 2.0. Larger Width/Spacing means more
	// overlap and more possible orderings.
	Width float64
	// Jitter perturbs each center by U[-Jitter, +Jitter] (default
	// Spacing/2) so instances differ across seeds.
	Jitter float64
	// HeteroWidth, when positive, draws each tuple's width from
	// U[Width·(1−HeteroWidth), Width·(1+HeteroWidth)], modeling tuples
	// whose uncertainty differs (e.g. sensors of mixed quality).
	HeteroWidth float64
	// Seed drives the generator.
	Seed int64
}

func (s Spec) withDefaults() Spec {
	if s.Family == "" {
		s.Family = Uniform
	}
	if s.Spacing == 0 {
		s.Spacing = 0.5
	}
	if s.Width == 0 {
		s.Width = 2.0
	}
	if s.Jitter == 0 {
		s.Jitter = s.Spacing / 2
	}
	return s
}

// Generate builds the workload described by spec. Tuple i has its score
// centered near i·Spacing; tuple ids therefore correlate with the expected
// ranking (higher id ⇒ higher expected score), which makes experiment output
// easy to read.
func Generate(spec Spec) ([]dist.Distribution, error) {
	spec = spec.withDefaults()
	if spec.N < 1 {
		return nil, fmt.Errorf("%w: N = %d", ErrBadSpec, spec.N)
	}
	if spec.Spacing < 0 || spec.Width <= 0 || spec.Jitter < 0 || spec.HeteroWidth < 0 || spec.HeteroWidth >= 1 {
		return nil, fmt.Errorf("%w: spacing %g, width %g, jitter %g, heteroWidth %g",
			ErrBadSpec, spec.Spacing, spec.Width, spec.Jitter, spec.HeteroWidth)
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	ds := make([]dist.Distribution, spec.N)
	for i := range ds {
		center := float64(i)*spec.Spacing + (rng.Float64()*2-1)*spec.Jitter
		width := spec.Width
		if spec.HeteroWidth > 0 {
			width *= 1 + (rng.Float64()*2-1)*spec.HeteroWidth
		}
		var d dist.Distribution
		var err error
		switch spec.Family {
		case Uniform:
			d, err = dist.NewUniformAround(center, width)
		case Gaussian:
			// Support is ±4σ, so σ = width/8 gives a support of `width`.
			d, err = dist.NewGaussian(center, width/8)
		case Triangular:
			mode := center + (rng.Float64()*2-1)*width/4
			d, err = dist.NewTriangular(center-width/2, mode, center+width/2)
		default:
			return nil, fmt.Errorf("%w: unknown family %q", ErrBadSpec, spec.Family)
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: tuple %d: %w", i, err)
		}
		ds[i] = d
	}
	return ds, nil
}

// WriteCSV stores the dataset with one row per tuple:
//
//	family,param1,param2,param3
//
// uniform: lo,hi,- · gaussian: mu,sigma,- · triangular: lo,mode,hi.
func WriteCSV(w io.Writer, ds []dist.Distribution) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{"family", "p1", "p2", "p3"}); err != nil {
		return err
	}
	for i, d := range ds {
		var rec []string
		switch v := d.(type) {
		case *dist.Uniform:
			rec = []string{"uniform", fmtF(v.Lo), fmtF(v.Hi), ""}
		case *dist.Gaussian:
			rec = []string{"gaussian", fmtF(v.Mu), fmtF(v.Sigma), ""}
		case *dist.Triangular:
			rec = []string{"triangular", fmtF(v.Lo), fmtF(v.Mode), fmtF(v.Hi)}
		default:
			return fmt.Errorf("dataset: tuple %d: family %T not serializable", i, d)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', 17, 64) }

// ReadCSV loads a dataset written by WriteCSV.
func ReadCSV(r io.Reader) ([]dist.Distribution, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("dataset: empty csv")
	}
	if rows[0][0] == "family" {
		rows = rows[1:]
	}
	ds := make([]dist.Distribution, 0, len(rows))
	for i, row := range rows {
		if len(row) < 3 {
			return nil, fmt.Errorf("dataset: row %d: need at least 3 fields, got %d", i, len(row))
		}
		p := func(j int) (float64, error) {
			return strconv.ParseFloat(row[j], 64)
		}
		var d dist.Distribution
		switch Family(row[0]) {
		case Uniform:
			lo, err1 := p(1)
			hi, err2 := p(2)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("dataset: row %d: bad uniform params %v", i, row)
			}
			d, err = dist.NewUniform(lo, hi)
		case Gaussian:
			mu, err1 := p(1)
			sigma, err2 := p(2)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("dataset: row %d: bad gaussian params %v", i, row)
			}
			d, err = dist.NewGaussian(mu, sigma)
		case Triangular:
			if len(row) < 4 {
				return nil, fmt.Errorf("dataset: row %d: triangular needs 3 params", i)
			}
			lo, err1 := p(1)
			mode, err2 := p(2)
			hi, err3 := p(3)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("dataset: row %d: bad triangular params %v", i, row)
			}
			d, err = dist.NewTriangular(lo, mode, hi)
		default:
			return nil, fmt.Errorf("dataset: row %d: unknown family %q", i, row[0])
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: row %d: %w", i, err)
		}
		ds = append(ds, d)
	}
	return ds, nil
}
