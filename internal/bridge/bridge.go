// Package bridge hands selected unexported internals of the root crowdtopk
// package to its sibling public packages (crowdtopk/sdk) without exporting
// them to the world: the root package assigns these hooks in an init, and
// the siblings call them. Internal packages cannot import the root package
// (it imports them), so a function-variable seam is the only cycle-free
// direction.
package bridge

import "crowdtopk/internal/dist"

// DatasetDists unwraps a *crowdtopk.Dataset (passed as any to avoid the
// import cycle) into its score distributions. Set by package crowdtopk's
// init; nil until that package is linked in.
var DatasetDists func(ds any) []dist.Distribution

// DatasetNames unwraps a *crowdtopk.Dataset's tuple names (nil when
// unnamed). Set by package crowdtopk's init.
var DatasetNames func(ds any) []string
