package rank

import (
	"testing"
)

func TestOrderingCloneEqual(t *testing.T) {
	o := Ordering{3, 1, 2}
	c := o.Clone()
	if !o.Equal(c) {
		t.Fatal("clone not equal")
	}
	c[0] = 9
	if o[0] != 3 {
		t.Fatal("clone shares backing array")
	}
	if o.Equal(Ordering{3, 1}) {
		t.Fatal("length mismatch reported equal")
	}
	if o.Equal(Ordering{3, 2, 1}) {
		t.Fatal("different order reported equal")
	}
}

func TestPositions(t *testing.T) {
	o := Ordering{5, 9, 2}
	pos := o.Positions()
	for i, id := range o {
		if pos[id] != i {
			t.Fatalf("pos[%d] = %d, want %d", id, pos[id], i)
		}
	}
}

func TestPositionsPanicsOnDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate ids")
		}
	}()
	Ordering{1, 2, 1}.Positions()
}

func TestContainsPrefix(t *testing.T) {
	o := Ordering{4, 7, 1, 3}
	if !o.Contains(7) || o.Contains(8) {
		t.Fatal("Contains wrong")
	}
	if got := o.Prefix(2); !got.Equal(Ordering{4, 7}) {
		t.Fatalf("Prefix(2) = %v", got)
	}
	if got := o.Prefix(10); !got.Equal(o) {
		t.Fatalf("Prefix beyond length = %v", got)
	}
}

func TestBefore(t *testing.T) {
	o := Ordering{4, 7, 1}
	cases := []struct {
		a, b, want int
	}{
		{4, 7, 1},   // both present, a first
		{7, 4, -1},  // both present, b first
		{4, 99, 1},  // only a present
		{99, 1, -1}, // only b present
		{98, 99, 0}, // neither present
	}
	for _, c := range cases {
		if got := o.Before(c.a, c.b); got != c.want {
			t.Errorf("Before(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestUnion(t *testing.T) {
	u := Union(Ordering{3, 1}, Ordering{1, 8}, Ordering{})
	want := []int{1, 3, 8}
	if len(u) != len(want) {
		t.Fatalf("Union = %v", u)
	}
	for i := range want {
		if u[i] != want[i] {
			t.Fatalf("Union = %v, want %v", u, want)
		}
	}
}

func TestIsPermutationOf(t *testing.T) {
	if !(Ordering{1, 2, 3}).IsPermutationOf(Ordering{3, 1, 2}) {
		t.Fatal("permutation not recognized")
	}
	if (Ordering{1, 2, 3}).IsPermutationOf(Ordering{1, 2, 4}) {
		t.Fatal("different sets reported as permutations")
	}
	if (Ordering{1, 2}).IsPermutationOf(Ordering{1, 2, 3}) {
		t.Fatal("different lengths reported as permutations")
	}
	if !(Ordering{}).IsPermutationOf(Ordering{}) {
		t.Fatal("empty orderings are permutations of each other")
	}
}
