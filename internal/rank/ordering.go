// Package rank provides the ordering substrate of the reproduction: ranked
// lists (full orderings and top-k prefixes), the generalized Kendall tau and
// Spearman footrule distances of Fagin et al. for top-k lists, weighted
// pairwise preference matrices, and Kemeny optimal rank aggregation — the
// Optimal Rank Aggregation (ORA) of Soliman et al. used by the U_ORA
// uncertainty measure.
package rank

import (
	"fmt"
	"sort"
)

// Ordering is a ranked list of tuple identifiers, best first. It may be a
// full ordering of the dataset or a top-k prefix.
type Ordering []int

// Clone returns a copy of o.
func (o Ordering) Clone() Ordering {
	return append(Ordering(nil), o...)
}

// Equal reports whether o and other contain the same ids in the same order.
func (o Ordering) Equal(other Ordering) bool {
	if len(o) != len(other) {
		return false
	}
	for i := range o {
		if o[i] != other[i] {
			return false
		}
	}
	return true
}

// Positions returns a map from id to zero-based rank.
// Duplicate ids are invalid and cause a panic, as they would silently corrupt
// every distance computation downstream.
func (o Ordering) Positions() map[int]int {
	pos := make(map[int]int, len(o))
	for i, id := range o {
		if _, dup := pos[id]; dup {
			panic(fmt.Sprintf("rank: duplicate id %d in ordering %v", id, o))
		}
		pos[id] = i
	}
	return pos
}

// Contains reports whether id appears in o.
func (o Ordering) Contains(id int) bool {
	for _, v := range o {
		if v == id {
			return true
		}
	}
	return false
}

// Prefix returns the first k elements of o (all of o when k >= len(o)).
func (o Ordering) Prefix(k int) Ordering {
	if k >= len(o) {
		return o
	}
	return o[:k]
}

// String implements fmt.Stringer.
func (o Ordering) String() string {
	return fmt.Sprint([]int(o))
}

// Before reports the relative order of ids a and b as implied by the top-k
// list o:
//
//	+1 — o implies a ranks before b (a appears first, or only a appears)
//	-1 — o implies b ranks before a
//	 0 — o does not determine the pair (neither appears)
func (o Ordering) Before(a, b int) int {
	pa, pb := -1, -1
	for i, v := range o {
		switch v {
		case a:
			pa = i
		case b:
			pb = i
		}
	}
	switch {
	case pa >= 0 && pb >= 0:
		if pa < pb {
			return 1
		}
		return -1
	case pa >= 0:
		return 1
	case pb >= 0:
		return -1
	default:
		return 0
	}
}

// Union returns the sorted set of ids appearing in any of the orderings.
func Union(lists ...Ordering) []int {
	seen := make(map[int]struct{})
	for _, l := range lists {
		for _, id := range l {
			seen[id] = struct{}{}
		}
	}
	out := make([]int, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// IsPermutationOf reports whether o and other contain exactly the same set of
// ids (in any order).
func (o Ordering) IsPermutationOf(other Ordering) bool {
	if len(o) != len(other) {
		return false
	}
	count := make(map[int]int, len(o))
	for _, id := range o {
		count[id]++
	}
	for _, id := range other {
		count[id]--
		if count[id] < 0 {
			return false
		}
	}
	return true
}
