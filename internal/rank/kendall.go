package rank

import "fmt"

// DefaultPenalty is the neutral penalty parameter p = 1/2 of Fagin et al.'s
// generalized Kendall tau for top-k lists: pairs whose relative order is
// undetermined (both appear in one list and neither in the other) contribute
// half a violation. The paper's distance D(ω_r, T_K) uses this neutral form.
const DefaultPenalty = 0.5

// KendallFull returns the number of discordant pairs between two full
// orderings of the same id set. It errors if a and b are not permutations of
// one another.
func KendallFull(a, b Ordering) (int, error) {
	if !a.IsPermutationOf(b) {
		return 0, fmt.Errorf("rank: KendallFull on non-permutations %v vs %v", a, b)
	}
	posB := b.Positions()
	// O(n^2) pair scan; orderings here have at most a few dozen elements.
	d := 0
	for i := 0; i < len(a); i++ {
		for j := i + 1; j < len(a); j++ {
			// a places a[i] before a[j]; discordant if b disagrees.
			if posB[a[i]] > posB[a[j]] {
				d++
			}
		}
	}
	return d, nil
}

// KendallFullNormalized returns KendallFull scaled to [0, 1] by the number of
// pairs. Lists of length < 2 have distance 0.
func KendallFullNormalized(a, b Ordering) (float64, error) {
	d, err := KendallFull(a, b)
	if err != nil {
		return 0, err
	}
	n := len(a)
	if n < 2 {
		return 0, nil
	}
	return float64(d) / float64(n*(n-1)/2), nil
}

// KendallTopK computes Fagin et al.'s generalized Kendall tau distance
// K^(p)(a, b) between two top-k lists that may rank different element sets.
// For every unordered pair {x, y} drawn from the union of the lists:
//
//	case 1 — x, y in both lists: penalty 1 if the lists disagree on the order;
//	case 2 — x, y in one list, exactly one of them in the other: the second
//	         list implies its present element ranks first; penalty 1 on
//	         disagreement;
//	case 3 — x only in a, y only in b: the lists necessarily disagree
//	         (each implies its own element ranks first); penalty 1;
//	case 4 — x, y both in one list, neither in the other: undetermined;
//	         penalty p.
func KendallTopK(a, b Ordering, p float64) float64 {
	posA, posB := a.Positions(), b.Positions()
	union := Union(a, b)
	total := 0.0
	for i := 0; i < len(union); i++ {
		for j := i + 1; j < len(union); j++ {
			x, y := union[i], union[j]
			xa, inXA := posA[x]
			ya, inYA := posA[y]
			xb, inXB := posB[x]
			yb, inYB := posB[y]
			switch {
			case inXA && inYA && inXB && inYB: // case 1
				if (xa < ya) != (xb < yb) {
					total++
				}
			case inXA && inYA && (inXB != inYB): // case 2, pair ordered by a
				// The element present in b is implied first by b.
				bFirst := y
				if inXB {
					bFirst = x
				}
				var aFirst int
				if xa < ya {
					aFirst = x
				} else {
					aFirst = y
				}
				if aFirst != bFirst {
					total++
				}
			case inXB && inYB && (inXA != inYA): // case 2, pair ordered by b
				aFirst := y
				if inXA {
					aFirst = x
				}
				var bFirst int
				if xb < yb {
					bFirst = x
				} else {
					bFirst = y
				}
				if aFirst != bFirst {
					total++
				}
			case inXA && inYA && !inXB && !inYB: // case 4
				total += p
			case inXB && inYB && !inXA && !inYA: // case 4
				total += p
			default: // case 3: one element exclusive to each list
				total++
			}
		}
	}
	return total
}

// KendallTopKMax returns the maximum possible K^(p) distance between top-k
// lists of lengths ka and kb (attained by disjoint lists): ka·kb cross pairs
// plus p-weighted within-list pairs.
func KendallTopKMax(ka, kb int, p float64) float64 {
	return float64(ka*kb) + p*float64(ka*(ka-1)/2+kb*(kb-1)/2)
}

// KendallTopKNormalized returns K^(p)(a, b) scaled to [0, 1] by the disjoint
// maximum. Two empty lists have distance 0.
func KendallTopKNormalized(a, b Ordering, p float64) float64 {
	max := KendallTopKMax(len(a), len(b), p)
	if max == 0 {
		return 0
	}
	return KendallTopK(a, b, p) / max
}

// FootruleTopK computes Fagin et al.'s footrule distance F^(l) between two
// top-k lists, placing every absent element at location l = max(ka, kb) + 1
// (0-based: position l-1) and summing absolute rank displacements over the
// union.
func FootruleTopK(a, b Ordering) float64 {
	posA, posB := a.Positions(), b.Positions()
	l := len(a)
	if len(b) > l {
		l = len(b)
	}
	total := 0.0
	for _, x := range Union(a, b) {
		pa, ok := posA[x]
		if !ok {
			pa = l
		}
		pb, ok := posB[x]
		if !ok {
			pb = l
		}
		d := pa - pb
		if d < 0 {
			d = -d
		}
		total += float64(d)
	}
	return total
}

// FootruleTopKNormalized scales FootruleTopK to [0, 1] by the disjoint-list
// maximum Σ_{i=0..ka-1}(l−i) + Σ_{i=0..kb-1}(l−i).
func FootruleTopKNormalized(a, b Ordering) float64 {
	l := len(a)
	if len(b) > l {
		l = len(b)
	}
	max := 0.0
	for i := 0; i < len(a); i++ {
		max += float64(l - i)
	}
	for i := 0; i < len(b); i++ {
		max += float64(l - i)
	}
	if max == 0 {
		return 0
	}
	return FootruleTopK(a, b) / max
}
