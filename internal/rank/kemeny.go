package rank

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// MaxExactKemeny is the largest item count for which Aggregate uses the
// exact O(2^m · m²) Held–Karp-style subset dynamic program. Beyond it the
// Borda-seeded local search heuristic is used.
const MaxExactKemeny = 16

// PreferenceMatrix accumulates weighted pairwise precedence evidence from a
// collection of top-k lists. W[i][j] is the total weight of lists implying
// Items[i] ranks before Items[j] (either both appear in that order, or only
// Items[i] appears — a top-k list implies its members precede all absentees).
type PreferenceMatrix struct {
	Items []int
	index map[int]int
	W     [][]float64
}

// NewPreferenceMatrix builds the weighted precedence matrix over the union of
// the given lists. weights must have one entry per list; negative weights are
// rejected.
func NewPreferenceMatrix(lists []Ordering, weights []float64) (*PreferenceMatrix, error) {
	if len(lists) != len(weights) {
		return nil, fmt.Errorf("rank: %d lists but %d weights", len(lists), len(weights))
	}
	items := Union(lists...)
	m := &PreferenceMatrix{Items: items, index: make(map[int]int, len(items))}
	for i, id := range items {
		m.index[id] = i
	}
	m.W = make([][]float64, len(items))
	backing := make([]float64, len(items)*len(items))
	for i := range m.W {
		m.W[i] = backing[i*len(items) : (i+1)*len(items)]
	}
	for li, list := range lists {
		w := weights[li]
		if w < 0 {
			return nil, fmt.Errorf("rank: negative weight %g for list %d", w, li)
		}
		if w == 0 {
			continue
		}
		present := make([]bool, len(items))
		for _, id := range list {
			present[m.index[id]] = true
		}
		for pi, id := range list {
			i := m.index[id]
			// id precedes every later element of the list...
			for _, jd := range list[pi+1:] {
				m.W[i][m.index[jd]] += w
			}
			// ...and every item absent from the list.
			for j := range items {
				if !present[j] {
					m.W[i][j] += w
				}
			}
		}
	}
	return m, nil
}

// Disagreement returns the total weight of pairwise preferences violated by
// ordering the items as π (which must be a permutation of Items).
func (m *PreferenceMatrix) Disagreement(pi Ordering) (float64, error) {
	if len(pi) != len(m.Items) {
		return 0, fmt.Errorf("rank: Disagreement with %d of %d items", len(pi), len(m.Items))
	}
	idx := make([]int, len(pi))
	for k, id := range pi {
		i, ok := m.index[id]
		if !ok {
			return 0, fmt.Errorf("rank: unknown item %d in candidate ordering", id)
		}
		idx[k] = i
	}
	total := 0.0
	for a := 0; a < len(idx); a++ {
		for b := a + 1; b < len(idx); b++ {
			// idx[a] placed before idx[b]; violated preferences wanted the converse.
			total += m.W[idx[b]][idx[a]]
		}
	}
	return total, nil
}

// BordaOrdering returns the items sorted by decreasing total outgoing
// preference weight (Borda-style score), ties broken by id. It is both a
// usable heuristic aggregate and the seed for the local search.
func (m *PreferenceMatrix) BordaOrdering() Ordering {
	type scored struct {
		id    int
		score float64
	}
	ss := make([]scored, len(m.Items))
	for i, id := range m.Items {
		s := 0.0
		for j := range m.Items {
			s += m.W[i][j]
		}
		ss[i] = scored{id, s}
	}
	sort.Slice(ss, func(a, b int) bool {
		if ss[a].score != ss[b].score {
			return ss[a].score > ss[b].score
		}
		return ss[a].id < ss[b].id
	})
	out := make(Ordering, len(ss))
	for i, s := range ss {
		out[i] = s.id
	}
	return out
}

// CopelandOrdering sorts items by their Copeland score (number of pairwise
// majority wins), ties broken by Borda score then id.
func (m *PreferenceMatrix) CopelandOrdering() Ordering {
	n := len(m.Items)
	wins := make([]float64, n)
	borda := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			borda[i] += m.W[i][j]
			if m.W[i][j] > m.W[j][i] {
				wins[i]++
			} else if m.W[i][j] == m.W[j][i] {
				wins[i] += 0.5
			}
		}
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if wins[ia] != wins[ib] {
			return wins[ia] > wins[ib]
		}
		if borda[ia] != borda[ib] {
			return borda[ia] > borda[ib]
		}
		return m.Items[ia] < m.Items[ib]
	})
	out := make(Ordering, n)
	for i, ii := range idx {
		out[i] = m.Items[ii]
	}
	return out
}

// Kemeny returns a minimum-disagreement (Kemeny optimal) ordering of the
// items: the Optimal Rank Aggregation. Exact for up to MaxExactKemeny items;
// beyond that a Borda-seeded local search (adjacent swaps plus single-item
// relocations to local optimum) is used and the result may be approximate.
func (m *PreferenceMatrix) Kemeny() Ordering {
	n := len(m.Items)
	switch {
	case n == 0:
		return Ordering{}
	case n == 1:
		return Ordering{m.Items[0]}
	case n <= MaxExactKemeny:
		return m.kemenyExact()
	default:
		return m.kemenyLocalSearch()
	}
}

// kemenyExact runs the subset DP: dp[S] is the minimum disagreement of any
// arrangement of the items in S occupying the first |S| positions. Appending
// item v to prefix-set S costs Σ_{u∈S} W[v][u] (all of S is ranked above v).
func (m *PreferenceMatrix) kemenyExact() Ordering {
	n := len(m.Items)
	size := 1 << n
	dp := make([]float64, size)
	parent := make([]int8, size) // item appended to reach this set
	for s := 1; s < size; s++ {
		dp[s] = math.Inf(1)
	}
	for s := 0; s < size; s++ {
		if math.IsInf(dp[s], 1) {
			continue
		}
		for v := 0; v < n; v++ {
			if s&(1<<v) != 0 {
				continue
			}
			cost := 0.0
			rest := s
			for rest != 0 {
				u := bits.TrailingZeros32(uint32(rest))
				rest &= rest - 1
				cost += m.W[v][u]
			}
			ns := s | 1<<v
			if c := dp[s] + cost; c < dp[ns] {
				dp[ns] = c
				parent[ns] = int8(v)
			}
		}
	}
	// Reconstruct back to front.
	out := make(Ordering, n)
	s := size - 1
	for i := n - 1; i >= 0; i-- {
		v := int(parent[s])
		out[i] = m.Items[v]
		s &^= 1 << v
	}
	return out
}

// kemenyLocalSearch refines the Borda seed with single-item relocations
// until no move improves the disagreement.
func (m *PreferenceMatrix) kemenyLocalSearch() Ordering {
	cur := m.BordaOrdering()
	idx := make([]int, len(cur))
	for k, id := range cur {
		idx[k] = m.index[id]
	}
	cost := m.disagreementIdx(idx)
	improved := true
	for improved {
		improved = false
		for from := 0; from < len(idx); from++ {
			for to := 0; to < len(idx); to++ {
				if to == from {
					continue
				}
				cand := relocate(idx, from, to)
				if c := m.disagreementIdx(cand); c < cost-1e-15 {
					idx, cost = cand, c
					improved = true
				}
			}
		}
	}
	out := make(Ordering, len(idx))
	for k, i := range idx {
		out[k] = m.Items[i]
	}
	return out
}

func (m *PreferenceMatrix) disagreementIdx(idx []int) float64 {
	total := 0.0
	for a := 0; a < len(idx); a++ {
		for b := a + 1; b < len(idx); b++ {
			total += m.W[idx[b]][idx[a]]
		}
	}
	return total
}

func relocate(idx []int, from, to int) []int {
	out := make([]int, 0, len(idx))
	out = append(out, idx[:from]...)
	out = append(out, idx[from+1:]...)
	out = append(out[:to], append([]int{idx[from]}, out[to:]...)...)
	return out
}

// Aggregate computes the ORA of a weighted collection of top-k lists: the
// Kemeny optimal ordering of the union of their items under the precedence
// evidence the lists carry.
func Aggregate(lists []Ordering, weights []float64) (Ordering, error) {
	m, err := NewPreferenceMatrix(lists, weights)
	if err != nil {
		return nil, err
	}
	return m.Kemeny(), nil
}
