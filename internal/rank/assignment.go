package rank

import (
	"fmt"
	"math"
)

// AssignMinCost solves the min-cost perfect assignment problem on a square
// cost matrix (Hungarian algorithm, O(n³) shortest-augmenting-path variant):
// result[i] = column assigned to row i. It is the engine behind
// footrule-optimal rank aggregation.
func AssignMinCost(cost [][]float64) ([]int, float64, error) {
	n := len(cost)
	if n == 0 {
		return nil, 0, nil
	}
	for i, row := range cost {
		if len(row) != n {
			return nil, 0, fmt.Errorf("rank: cost matrix row %d has %d columns, want %d", i, len(row), n)
		}
		for j, c := range row {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				return nil, 0, fmt.Errorf("rank: non-finite cost at (%d, %d)", i, j)
			}
		}
	}
	// Potentials u (rows), v (columns); way[j] = previous column on the
	// augmenting path; matchCol[j] = row matched to column j. 1-based
	// sentinel style per the classical formulation.
	const inf = math.MaxFloat64
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	matchCol := make([]int, n+1) // 0 = unmatched
	way := make([]int, n+1)
	for i := 1; i <= n; i++ {
		matchCol[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := range minv {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := matchCol[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[matchCol[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if matchCol[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			matchCol[j0] = matchCol[j1]
			j0 = j1
		}
	}
	assign := make([]int, n)
	total := 0.0
	for j := 1; j <= n; j++ {
		if matchCol[j] == 0 {
			return nil, 0, fmt.Errorf("rank: assignment incomplete at column %d", j)
		}
		assign[matchCol[j]-1] = j - 1
		total += cost[matchCol[j]-1][j-1]
	}
	return assign, total, nil
}

// FootruleAggregate computes the footrule-optimal aggregation of weighted
// top-k lists (Dwork et al.): the permutation of the union items minimizing
// Σ_lists w_l·F(π, list_l), where absent items sit at position
// max-list-length. Footrule-optimal aggregation 2-approximates the Kemeny
// optimum and runs in polynomial time, making it a scalable alternative to
// the exact ORA for large trees.
func FootruleAggregate(lists []Ordering, weights []float64) (Ordering, error) {
	if len(lists) != len(weights) {
		return nil, fmt.Errorf("rank: %d lists but %d weights", len(lists), len(weights))
	}
	items := Union(lists...)
	n := len(items)
	if n == 0 {
		return Ordering{}, nil
	}
	maxLen := 0
	for _, l := range lists {
		if len(l) > maxLen {
			maxLen = len(l)
		}
	}
	// cost[i][p] = Σ_l w_l · |pos_l(items[i]) − p| with absent → maxLen.
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
	}
	for li, l := range lists {
		w := weights[li]
		if w < 0 {
			return nil, fmt.Errorf("rank: negative weight %g for list %d", w, li)
		}
		if w == 0 {
			continue
		}
		pos := l.Positions()
		for i, id := range items {
			pl, ok := pos[id]
			if !ok {
				pl = maxLen
			}
			for p := 0; p < n; p++ {
				d := float64(pl - p)
				if d < 0 {
					d = -d
				}
				cost[i][p] += w * d
			}
		}
	}
	assign, _, err := AssignMinCost(cost)
	if err != nil {
		return nil, err
	}
	out := make(Ordering, n)
	for i, p := range assign {
		out[p] = items[i]
	}
	return out, nil
}
