package rank

// TopKDist computes generalized Kendall tau distances of many top-k lists
// against one fixed reference list without per-call map allocations — the
// hot path of the U_ORA/U_MPO measures and of the D(ω_r, T_K) metric, where
// thousands of leaf orderings are compared against a single representative.
type TopKDist struct {
	ref     Ordering
	penalty float64
	posRef  []int // posRef[id] = rank in ref, -1 if absent (dense by id)
	posO    []int // scratch: rank in the probed ordering
	stamp   []int // scratch: last probe epoch that touched the id
	epoch   int
	union   []int // scratch: ids in ref ∪ o
}

// NewTopKDist prepares a distancer against ref with the given penalty
// parameter (DefaultPenalty if 0). Tuple ids must be non-negative.
func NewTopKDist(ref Ordering, penalty float64) *TopKDist {
	if penalty == 0 {
		penalty = DefaultPenalty
	}
	d := &TopKDist{ref: ref.Clone(), penalty: penalty}
	d.grow(maxID(ref))
	for i, id := range d.ref {
		d.posRef[id] = i
	}
	return d
}

func maxID(o Ordering) int {
	m := -1
	for _, id := range o {
		if id > m {
			m = id
		}
	}
	return m
}

func (d *TopKDist) grow(id int) {
	for len(d.posRef) <= id {
		d.posRef = append(d.posRef, -1)
		d.posO = append(d.posO, -1)
		d.stamp = append(d.stamp, 0)
	}
}

// Reset repoints the distancer at a new reference list, reusing every
// internal buffer. It is equivalent to NewTopKDist(ref, penalty) but
// allocation-free once the buffers have grown to the workload's id range —
// the U_ORA/U_MPO measures re-reference every partition cell during the
// expected-residual sweeps, where a fresh distancer per cell dominated the
// allocation profile.
func (d *TopKDist) Reset(ref Ordering, penalty float64) {
	if penalty == 0 {
		penalty = DefaultPenalty
	}
	for _, id := range d.ref {
		d.posRef[id] = -1
	}
	d.penalty = penalty
	d.ref = append(d.ref[:0], ref...)
	d.grow(maxID(ref))
	for i, id := range d.ref {
		d.posRef[id] = i
	}
}

// Distance returns K^(p)(o, ref) (unnormalized).
func (d *TopKDist) Distance(o Ordering) float64 {
	d.epoch++
	if m := maxID(o); m >= len(d.posRef) {
		d.grow(m)
	}
	d.union = d.union[:0]
	for i, id := range o {
		d.posO[id] = i
		d.stamp[id] = d.epoch
		d.union = append(d.union, id)
	}
	for _, id := range d.ref {
		if d.stamp[id] != d.epoch {
			d.union = append(d.union, id)
		}
	}
	total := 0.0
	for a := 0; a < len(d.union); a++ {
		for b := a + 1; b < len(d.union); b++ {
			x, y := d.union[a], d.union[b]
			xo, yo := d.rankO(x), d.rankO(y)
			xr, yr := d.posRef[x], d.posRef[y]
			inXO, inYO := xo >= 0, yo >= 0
			inXR, inYR := xr >= 0, yr >= 0
			switch {
			case inXO && inYO && inXR && inYR: // case 1
				if (xo < yo) != (xr < yr) {
					total++
				}
			case inXO && inYO && (inXR != inYR): // case 2 via o
				oFirst := x
				if yo < xo {
					oFirst = y
				}
				rFirst := y
				if inXR {
					rFirst = x
				}
				if oFirst != rFirst {
					total++
				}
			case inXR && inYR && (inXO != inYO): // case 2 via ref
				rFirst := x
				if yr < xr {
					rFirst = y
				}
				oFirst := y
				if inXO {
					oFirst = x
				}
				if oFirst != rFirst {
					total++
				}
			case (inXO && inYO) || (inXR && inYR): // case 4
				total += d.penalty
			default: // case 3
				total++
			}
		}
	}
	return total
}

// rankO returns the probed ordering's rank of id, or -1 when absent.
func (d *TopKDist) rankO(id int) int {
	if d.stamp[id] != d.epoch {
		return -1
	}
	return d.posO[id]
}

// Normalized returns K^(p)(o, ref) scaled to [0, 1] by the disjoint-list
// maximum.
func (d *TopKDist) Normalized(o Ordering) float64 {
	max := KendallTopKMax(len(o), len(d.ref), d.penalty)
	if max == 0 {
		return 0
	}
	return d.Distance(o) / max
}
