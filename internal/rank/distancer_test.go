package rank

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTopKDistMatchesKendallTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	f := func() bool {
		ref := randomTopK(rng, 9, 2+rng.Intn(4))
		d := NewTopKDist(ref, DefaultPenalty)
		// Probe several orderings against the same distancer to exercise
		// the epoch/scratch reuse.
		for probe := 0; probe < 5; probe++ {
			o := randomTopK(rng, 9, 2+rng.Intn(4))
			want := KendallTopK(o, ref, DefaultPenalty)
			if got := d.Distance(o); got != want {
				t.Logf("ref=%v o=%v: distancer %g, reference %g", ref, o, got, want)
				return false
			}
			wantN := KendallTopKNormalized(o, ref, DefaultPenalty)
			if got := d.Normalized(o); got != wantN {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTopKDistGrowsForUnseenIDs(t *testing.T) {
	d := NewTopKDist(Ordering{0, 1}, 0.5)
	o := Ordering{100, 1}
	want := KendallTopK(o, Ordering{0, 1}, 0.5)
	if got := d.Distance(o); got != want {
		t.Fatalf("large-id distance %g, want %g", got, want)
	}
}

func TestTopKDistIdenticalAndDisjoint(t *testing.T) {
	ref := Ordering{3, 1, 4}
	d := NewTopKDist(ref, 0.5)
	if got := d.Normalized(ref); got != 0 {
		t.Fatalf("identical = %g", got)
	}
	if got := d.Normalized(Ordering{7, 8, 9}); got != 1 {
		t.Fatalf("disjoint = %g", got)
	}
}

func TestTopKDistDefaultPenalty(t *testing.T) {
	ref := Ordering{0, 1}
	d := NewTopKDist(ref, 0)
	o := Ordering{2, 3}
	if got, want := d.Distance(o), KendallTopK(o, ref, DefaultPenalty); got != want {
		t.Fatalf("zero-penalty constructor: %g, want default-penalty %g", got, want)
	}
}

func BenchmarkKendallTopKMap(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ref := randomTopK(rng, 20, 5)
	os := make([]Ordering, 64)
	for i := range os {
		os[i] = randomTopK(rng, 20, 5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KendallTopKNormalized(os[i%len(os)], ref, DefaultPenalty)
	}
}

func BenchmarkKendallTopKDistancer(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ref := randomTopK(rng, 20, 5)
	os := make([]Ordering, 64)
	for i := range os {
		os[i] = randomTopK(rng, 20, 5)
	}
	d := NewTopKDist(ref, DefaultPenalty)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Normalized(os[i%len(os)])
	}
}
