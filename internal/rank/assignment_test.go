package rank

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAssignMinCostKnownMatrices(t *testing.T) {
	cases := []struct {
		name string
		cost [][]float64
		want float64
	}{
		{
			"identity optimal",
			[][]float64{
				{1, 10, 10},
				{10, 1, 10},
				{10, 10, 1},
			},
			3,
		},
		{
			"anti-diagonal optimal",
			[][]float64{
				{10, 10, 1},
				{10, 1, 10},
				{1, 10, 10},
			},
			3,
		},
		{
			"classic 4x4",
			[][]float64{
				{82, 83, 69, 92},
				{77, 37, 49, 92},
				{11, 69, 5, 86},
				{8, 9, 98, 23},
			},
			140, // known optimum of this standard instance
		},
		{"single", [][]float64{{7}}, 7},
		{"empty", nil, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			assign, total, err := AssignMinCost(c.cost)
			if err != nil {
				t.Fatal(err)
			}
			if total != c.want {
				t.Fatalf("total = %g, want %g (assignment %v)", total, c.want, assign)
			}
			seen := map[int]bool{}
			for _, j := range assign {
				if seen[j] {
					t.Fatalf("column %d assigned twice: %v", j, assign)
				}
				seen[j] = true
			}
		})
	}
}

func TestAssignMinCostRejectsBadInput(t *testing.T) {
	if _, _, err := AssignMinCost([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged matrix accepted")
	}
	if _, _, err := AssignMinCost([][]float64{{math.NaN()}}); err == nil {
		t.Fatal("NaN cost accepted")
	}
	if _, _, err := AssignMinCost([][]float64{{math.Inf(1)}}); err == nil {
		t.Fatal("infinite cost accepted")
	}
}

// bruteForceAssignment enumerates all permutations for the true optimum.
func bruteForceAssignment(cost [][]float64) float64 {
	n := len(cost)
	best := math.Inf(1)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var rec func(k int, acc float64)
	rec = func(k int, acc float64) {
		if acc >= best {
			return
		}
		if k == n {
			best = acc
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k+1, acc+cost[k][perm[k]])
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0, 0)
	return best
}

func TestAssignMinCostMatchesBruteForceQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	f := func() bool {
		n := 2 + rng.Intn(5)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = math.Floor(rng.Float64() * 100)
			}
		}
		_, total, err := AssignMinCost(cost)
		if err != nil {
			return false
		}
		return math.Abs(total-bruteForceAssignment(cost)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFootruleAggregateUnanimous(t *testing.T) {
	lists := []Ordering{{2, 0, 1}, {2, 0, 1}}
	got, err := FootruleAggregate(lists, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(Ordering{2, 0, 1}) {
		t.Fatalf("unanimous aggregate = %v", got)
	}
}

func TestFootruleAggregateWeights(t *testing.T) {
	lists := []Ordering{{0, 1}, {1, 0}}
	got, err := FootruleAggregate(lists, []float64{1, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(Ordering{1, 0}) {
		t.Fatalf("aggregate = %v, want the heavy list's order", got)
	}
}

func TestFootruleAggregateEmptyAndValidation(t *testing.T) {
	got, err := FootruleAggregate(nil, nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty aggregate = %v, %v", got, err)
	}
	if _, err := FootruleAggregate([]Ordering{{1}}, nil); err == nil {
		t.Fatal("mismatched weights accepted")
	}
	if _, err := FootruleAggregate([]Ordering{{1}}, []float64{-1}); err == nil {
		t.Fatal("negative weight accepted")
	}
}

// TestFootruleOptimality verifies the aggregate minimizes the weighted
// footrule over all permutations on small instances.
func TestFootruleOptimality(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(3)
		var lists []Ordering
		var ws []float64
		for l := 0; l < 4; l++ {
			lists = append(lists, randomTopK(rng, n, 2+rng.Intn(n-1)))
			ws = append(ws, rng.Float64()+0.1)
		}
		got, err := FootruleAggregate(lists, ws)
		if err != nil {
			t.Fatal(err)
		}
		items := Union(lists...)
		gotCost := footruleCost(got, lists, ws)
		best := math.Inf(1)
		permute(items, func(p Ordering) {
			if c := footruleCost(p, lists, ws); c < best {
				best = c
			}
		})
		if gotCost > best+1e-9 {
			t.Fatalf("trial %d: aggregate cost %g, optimum %g (lists %v)", trial, gotCost, best, lists)
		}
	}
}

// footruleCost evaluates Σ_l w_l · F(π, list_l) with absent items at the
// max list length, mirroring FootruleAggregate's objective.
func footruleCost(pi Ordering, lists []Ordering, ws []float64) float64 {
	maxLen := 0
	for _, l := range lists {
		if len(l) > maxLen {
			maxLen = len(l)
		}
	}
	pos := pi.Positions()
	total := 0.0
	for li, l := range lists {
		lp := l.Positions()
		for id, p := range pos {
			pl, ok := lp[id]
			if !ok {
				pl = maxLen
			}
			d := p - pl
			if d < 0 {
				d = -d
			}
			total += ws[li] * float64(d)
		}
	}
	return total
}

func permute(items []int, fn func(Ordering)) {
	var rec func(k int, cur []int)
	rec = func(k int, cur []int) {
		if k == len(cur) {
			fn(Ordering(append([]int(nil), cur...)))
			return
		}
		for i := k; i < len(cur); i++ {
			cur[k], cur[i] = cur[i], cur[k]
			rec(k+1, cur)
			cur[k], cur[i] = cur[i], cur[k]
		}
	}
	rec(0, append([]int(nil), items...))
}

// TestFootruleTwoApproxOfKemeny checks the classical guarantee on random
// instances: footrule aggregation's Kemeny cost is at most twice the exact
// Kemeny optimum.
func TestFootruleTwoApproxOfKemeny(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(3)
		var lists []Ordering
		var ws []float64
		for l := 0; l < 5; l++ {
			lists = append(lists, randomTopK(rng, n, n)) // full permutations
			ws = append(ws, 1)
		}
		m, err := NewPreferenceMatrix(lists, ws)
		if err != nil {
			t.Fatal(err)
		}
		kemeny := m.Kemeny()
		kc, err := m.Disagreement(kemeny)
		if err != nil {
			t.Fatal(err)
		}
		fr, err := FootruleAggregate(lists, ws)
		if err != nil {
			t.Fatal(err)
		}
		fc, err := m.Disagreement(fr)
		if err != nil {
			t.Fatal(err)
		}
		if fc > 2*kc+1e-9 {
			t.Fatalf("trial %d: footrule Kemeny-cost %g exceeds 2×optimum %g", trial, fc, kc)
		}
	}
}
