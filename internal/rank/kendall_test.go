package rank

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKendallFull(t *testing.T) {
	cases := []struct {
		name string
		a, b Ordering
		want int
	}{
		{"identical", Ordering{1, 2, 3}, Ordering{1, 2, 3}, 0},
		{"reversed", Ordering{1, 2, 3}, Ordering{3, 2, 1}, 3},
		{"one swap", Ordering{1, 2, 3}, Ordering{2, 1, 3}, 1},
		{"singleton", Ordering{7}, Ordering{7}, 0},
		{"empty", Ordering{}, Ordering{}, 0},
		{"four reversed", Ordering{1, 2, 3, 4}, Ordering{4, 3, 2, 1}, 6},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := KendallFull(c.a, c.b)
			if err != nil {
				t.Fatal(err)
			}
			if got != c.want {
				t.Fatalf("KendallFull = %d, want %d", got, c.want)
			}
		})
	}
}

func TestKendallFullRejectsNonPermutations(t *testing.T) {
	if _, err := KendallFull(Ordering{1, 2}, Ordering{1, 3}); err == nil {
		t.Fatal("expected error for different id sets")
	}
}

func TestKendallFullNormalizedRange(t *testing.T) {
	if d, _ := KendallFullNormalized(Ordering{1, 2, 3, 4}, Ordering{4, 3, 2, 1}); d != 1 {
		t.Fatalf("reversed normalized distance = %g, want 1", d)
	}
	if d, _ := KendallFullNormalized(Ordering{5}, Ordering{5}); d != 0 {
		t.Fatalf("singleton distance = %g, want 0", d)
	}
}

func TestKendallTopKIdentical(t *testing.T) {
	a := Ordering{1, 2, 3}
	if d := KendallTopK(a, a, DefaultPenalty); d != 0 {
		t.Fatalf("identical lists distance = %g", d)
	}
}

func TestKendallTopKDisjointAttainsMax(t *testing.T) {
	a := Ordering{1, 2, 3}
	b := Ordering{4, 5, 6}
	for _, p := range []float64{0, 0.5, 1} {
		want := KendallTopKMax(3, 3, p)
		if d := KendallTopK(a, b, p); d != want {
			t.Fatalf("p=%g: disjoint distance = %g, want max %g", p, d, want)
		}
		if n := KendallTopKNormalized(a, b, p); n != 1 {
			t.Fatalf("p=%g: normalized disjoint = %g, want 1", p, n)
		}
	}
}

func TestKendallTopKCases(t *testing.T) {
	p := 0.5
	// Case 1: both pairs in both lists, opposite order.
	if d := KendallTopK(Ordering{1, 2}, Ordering{2, 1}, p); d != 1 {
		t.Fatalf("case 1 = %g, want 1", d)
	}
	// Case 2: {1,2} in a; only 2 in b. b implies 2 before 1; a has 1 before 2.
	if d := KendallTopK(Ordering{1, 2}, Ordering{2, 3}, p); d < 1 {
		t.Fatalf("case 2 should penalize, got %g", d)
	}
	// Case 2 agreement: a = {1,2}, b = {1,3}: b implies 1 before 2 — agrees.
	// Remaining pairs: (1,3) case 2 agree (a implies 1 first, b has 1 first),
	// (2,3) case 3 = 1.
	if d := KendallTopK(Ordering{1, 2}, Ordering{1, 3}, p); d != 1 {
		t.Fatalf("partial overlap agree = %g, want exactly the case-3 pair", d)
	}
	// Case 4 only: a = {1,2} vs b = {3,4} includes the within-list pairs at p.
	d := KendallTopK(Ordering{1, 2}, Ordering{3, 4}, p)
	want := 4 + 2*p // 4 cross pairs + {1,2} and {3,4} at p each
	if d != want {
		t.Fatalf("disjoint 2-lists = %g, want %g", d, want)
	}
}

func TestKendallTopKSymmetricQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func() bool {
		a, b := randomTopK(rng, 6, 4), randomTopK(rng, 6, 4)
		return KendallTopK(a, b, DefaultPenalty) == KendallTopK(b, a, DefaultPenalty)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestKendallTopKMatchesFullOnPermutations(t *testing.T) {
	// On full orderings of the same set, K^(p) reduces to plain Kendall tau.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		a := randomPermutation(rng, 6)
		b := randomPermutation(rng, 6)
		full, err := KendallFull(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if top := KendallTopK(a, b, DefaultPenalty); top != float64(full) {
			t.Fatalf("topk %g != full %d for %v vs %v", top, full, a, b)
		}
	}
}

func TestKendallTopKTriangleInequalityQuick(t *testing.T) {
	// K^(p) with p = 1/2 is a near-metric: d(a,c) <= 2(d(a,b) + d(b,c)).
	// (Fagin et al. prove equivalence to a metric within constant factor 2;
	// the raw triangle inequality can be violated slightly.)
	rng := rand.New(rand.NewSource(11))
	f := func() bool {
		a := randomTopK(rng, 7, 4)
		b := randomTopK(rng, 7, 4)
		c := randomTopK(rng, 7, 4)
		dab := KendallTopK(a, b, DefaultPenalty)
		dbc := KendallTopK(b, c, DefaultPenalty)
		dac := KendallTopK(a, c, DefaultPenalty)
		return dac <= 2*(dab+dbc)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestKendallTopKNormalizedRangeQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	f := func() bool {
		a := randomTopK(rng, 8, 3+rng.Intn(3))
		b := randomTopK(rng, 8, 3+rng.Intn(3))
		n := KendallTopKNormalized(a, b, DefaultPenalty)
		return n >= 0 && n <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFootruleTopK(t *testing.T) {
	if d := FootruleTopK(Ordering{1, 2, 3}, Ordering{1, 2, 3}); d != 0 {
		t.Fatalf("identical = %g", d)
	}
	// Swap of adjacent elements displaces each by 1.
	if d := FootruleTopK(Ordering{1, 2, 3}, Ordering{2, 1, 3}); d != 2 {
		t.Fatalf("adjacent swap = %g, want 2", d)
	}
	// Disjoint lists of length k: max = k(k+1).
	if d := FootruleTopK(Ordering{1, 2}, Ordering{3, 4}); d != 6 {
		t.Fatalf("disjoint = %g, want 6", d)
	}
	if n := FootruleTopKNormalized(Ordering{1, 2}, Ordering{3, 4}); n != 1 {
		t.Fatalf("normalized disjoint = %g, want 1", n)
	}
	if n := FootruleTopKNormalized(Ordering{}, Ordering{}); n != 0 {
		t.Fatalf("empty = %g", n)
	}
}

func TestFootruleDominatesKendallQuick(t *testing.T) {
	// Diaconis–Graham: K(a,b) <= F(a,b) for full permutations.
	rng := rand.New(rand.NewSource(23))
	f := func() bool {
		a := randomPermutation(rng, 7)
		b := randomPermutation(rng, 7)
		k, err := KendallFull(a, b)
		if err != nil {
			return false
		}
		return float64(k) <= FootruleTopK(a, b)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// randomPermutation returns a uniformly random ordering of 0..n-1.
func randomPermutation(rng *rand.Rand, n int) Ordering {
	p := rng.Perm(n)
	return Ordering(p)
}

// randomTopK returns k distinct ids drawn from 0..universe-1 in random order.
func randomTopK(rng *rand.Rand, universe, k int) Ordering {
	p := rng.Perm(universe)
	return Ordering(p[:k])
}

func TestKendallTopKMaxFormula(t *testing.T) {
	if got := KendallTopKMax(3, 3, 0.5); got != 9+0.5*6 {
		t.Fatalf("max(3,3,0.5) = %g", got)
	}
	if got := KendallTopKMax(2, 4, 1); got != 8+math.Trunc(1*(1+6)) {
		t.Fatalf("max(2,4,1) = %g", got)
	}
	if got := KendallTopKMax(0, 0, 0.5); got != 0 {
		t.Fatalf("max(0,0) = %g", got)
	}
}
