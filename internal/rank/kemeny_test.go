package rank

import (
	"math"
	"math/rand"
	"testing"
)

func TestPreferenceMatrixValidation(t *testing.T) {
	if _, err := NewPreferenceMatrix([]Ordering{{1, 2}}, nil); err == nil {
		t.Fatal("expected error on weight count mismatch")
	}
	if _, err := NewPreferenceMatrix([]Ordering{{1, 2}}, []float64{-1}); err == nil {
		t.Fatal("expected error on negative weight")
	}
}

func TestPreferenceMatrixCounts(t *testing.T) {
	// Two lists over {1,2,3}: w=2 says 1<2 (1 first), w=1 says 2<1.
	m, err := NewPreferenceMatrix(
		[]Ordering{{1, 2}, {2, 1}},
		[]float64{2, 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	i1, i2 := m.index[1], m.index[2]
	if m.W[i1][i2] != 2 || m.W[i2][i1] != 1 {
		t.Fatalf("W[1][2]=%g W[2][1]=%g, want 2 and 1", m.W[i1][i2], m.W[i2][i1])
	}
}

func TestPreferenceMatrixAbsenteeSemantics(t *testing.T) {
	// List {1} with universe {1,2} (2 appears in another zero... use two lists).
	m, err := NewPreferenceMatrix(
		[]Ordering{{1}, {2, 3}},
		[]float64{1, 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	// List {1}: 1 precedes absentees 2 and 3.
	i1, i2, i3 := m.index[1], m.index[2], m.index[3]
	if m.W[i1][i2] != 1 || m.W[i1][i3] != 1 {
		t.Fatalf("absentee precedence missing: W[1][2]=%g W[1][3]=%g", m.W[i1][i2], m.W[i1][i3])
	}
	// List {2,3}: 2 before 3, and both before absentee 1.
	if m.W[i2][i3] != 1 || m.W[i2][i1] != 1 || m.W[i3][i1] != 1 {
		t.Fatalf("list {2,3} precedence wrong")
	}
}

func TestDisagreement(t *testing.T) {
	m, err := NewPreferenceMatrix([]Ordering{{1, 2, 3}}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if d, err := m.Disagreement(Ordering{1, 2, 3}); err != nil || d != 0 {
		t.Fatalf("agreeing ordering: %g, %v", d, err)
	}
	if d, err := m.Disagreement(Ordering{3, 2, 1}); err != nil || d != 3 {
		t.Fatalf("reversed ordering: %g, %v; want 3", d, err)
	}
	if _, err := m.Disagreement(Ordering{1, 2}); err == nil {
		t.Fatal("expected error for missing items")
	}
	if _, err := m.Disagreement(Ordering{1, 2, 9}); err == nil {
		t.Fatal("expected error for unknown item")
	}
}

func TestBordaOrdering(t *testing.T) {
	// Strong consensus 5 < 3 < 1.
	m, err := NewPreferenceMatrix(
		[]Ordering{{5, 3, 1}, {5, 3, 1}, {3, 5, 1}},
		[]float64{1, 1, 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.BordaOrdering(); !got.Equal(Ordering{5, 3, 1}) {
		t.Fatalf("Borda = %v, want [5 3 1]", got)
	}
}

func TestCopelandOrdering(t *testing.T) {
	m, err := NewPreferenceMatrix(
		[]Ordering{{1, 2, 3}, {1, 2, 3}, {3, 1, 2}},
		[]float64{1, 1, 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	got := m.CopelandOrdering()
	if got[0] != 1 {
		t.Fatalf("Copeland = %v, want 1 first (wins both duels)", got)
	}
}

func TestKemenyUnanimous(t *testing.T) {
	lists := []Ordering{{2, 0, 1}, {2, 0, 1}, {2, 0, 1}}
	got, err := Aggregate(lists, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(Ordering{2, 0, 1}) {
		t.Fatalf("Kemeny of unanimous lists = %v", got)
	}
}

func TestKemenyMajority(t *testing.T) {
	lists := []Ordering{{1, 2, 3}, {1, 2, 3}, {3, 2, 1}}
	got, err := Aggregate(lists, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(Ordering{1, 2, 3}) {
		t.Fatalf("Kemeny = %v, want majority ordering [1 2 3]", got)
	}
}

func TestKemenyWeightsMatter(t *testing.T) {
	lists := []Ordering{{1, 2}, {2, 1}}
	got, err := Aggregate(lists, []float64{1, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(Ordering{2, 1}) {
		t.Fatalf("Kemeny = %v, want the heavily weighted ordering", got)
	}
}

func TestKemenyEmptyAndSingleton(t *testing.T) {
	got, err := Aggregate(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty aggregate = %v", got)
	}
	got, err = Aggregate([]Ordering{{42}}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(Ordering{42}) {
		t.Fatalf("singleton aggregate = %v", got)
	}
}

// bruteForceKemeny enumerates all permutations to find the true minimum
// disagreement value.
func bruteForceKemeny(t *testing.T, m *PreferenceMatrix) float64 {
	t.Helper()
	items := m.Items
	best := math.Inf(1)
	var rec func(prefix Ordering, rest []int)
	rec = func(prefix Ordering, rest []int) {
		if len(rest) == 0 {
			d, err := m.Disagreement(prefix)
			if err != nil {
				t.Fatal(err)
			}
			if d < best {
				best = d
			}
			return
		}
		for i := range rest {
			nr := append(append([]int(nil), rest[:i]...), rest[i+1:]...)
			rec(append(prefix, rest[i]), nr)
		}
	}
	rec(Ordering{}, items)
	return best
}

func TestKemenyExactMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(4) // 3..6 items
		var lists []Ordering
		var weights []float64
		for l := 0; l < 5; l++ {
			k := 2 + rng.Intn(n-1)
			lists = append(lists, randomTopK(rng, n, k))
			weights = append(weights, rng.Float64()+0.1)
		}
		m, err := NewPreferenceMatrix(lists, weights)
		if err != nil {
			t.Fatal(err)
		}
		got := m.Kemeny()
		gotCost, err := m.Disagreement(got)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForceKemeny(t, m)
		if math.Abs(gotCost-want) > 1e-9 {
			t.Fatalf("trial %d: Kemeny cost %g, brute force %g (lists %v)", trial, gotCost, want, lists)
		}
	}
}

func TestKemenyLocalSearchNotWorseThanBorda(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	n := MaxExactKemeny + 3 // force the heuristic path
	var lists []Ordering
	var weights []float64
	for l := 0; l < 8; l++ {
		lists = append(lists, randomTopK(rng, n, 5))
		weights = append(weights, rng.Float64()+0.1)
	}
	m, err := NewPreferenceMatrix(lists, weights)
	if err != nil {
		t.Fatal(err)
	}
	km := m.Kemeny()
	if len(km) != len(m.Items) {
		t.Fatalf("heuristic Kemeny has %d of %d items", len(km), len(m.Items))
	}
	kc, err := m.Disagreement(km)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := m.Disagreement(m.BordaOrdering())
	if err != nil {
		t.Fatal(err)
	}
	if kc > bc+1e-12 {
		t.Fatalf("local search (%g) worse than its own seed (%g)", kc, bc)
	}
}

func TestKemenyIsPermutationOfItems(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		var lists []Ordering
		var weights []float64
		for l := 0; l < 4; l++ {
			lists = append(lists, randomTopK(rng, 9, 4))
			weights = append(weights, 1)
		}
		m, err := NewPreferenceMatrix(lists, weights)
		if err != nil {
			t.Fatal(err)
		}
		got := m.Kemeny()
		want := Ordering(m.Items)
		if !got.IsPermutationOf(want) {
			t.Fatalf("Kemeny %v is not a permutation of items %v", got, m.Items)
		}
	}
}

func TestRelocate(t *testing.T) {
	base := []int{0, 1, 2, 3}
	cases := []struct {
		from, to int
		want     []int
	}{
		{0, 3, []int{1, 2, 3, 0}},
		{3, 0, []int{3, 0, 1, 2}},
		{1, 2, []int{0, 2, 1, 3}},
	}
	for _, c := range cases {
		got := relocate(base, c.from, c.to)
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Fatalf("relocate(%d→%d) = %v, want %v", c.from, c.to, got, c.want)
			}
		}
	}
	// base must be untouched.
	for i, v := range []int{0, 1, 2, 3} {
		if base[i] != v {
			t.Fatal("relocate mutated its input")
		}
	}
}
