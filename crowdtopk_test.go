package crowdtopk_test

import (
	"strings"
	"testing"

	crowdtopk "crowdtopk"
)

func testDataset(t *testing.T) *crowdtopk.Dataset {
	t.Helper()
	scores := []crowdtopk.Uncertain{
		crowdtopk.UniformScore(1.0, 1.2),
		crowdtopk.UniformScore(1.4, 1.2),
		crowdtopk.UniformScore(1.8, 1.2),
		crowdtopk.UniformScore(2.2, 1.2),
		crowdtopk.UniformScore(2.6, 1.2),
	}
	ds, err := crowdtopk.NewDataset(scores)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestScoreConstructors(t *testing.T) {
	cases := []struct {
		name  string
		score crowdtopk.Uncertain
		valid bool
	}{
		{"uniform ok", crowdtopk.UniformScore(1, 0.5), true},
		{"uniform bad width", crowdtopk.UniformScore(1, -1), false},
		{"gaussian ok", crowdtopk.GaussianScore(0, 1), true},
		{"gaussian bad sigma", crowdtopk.GaussianScore(0, 0), false},
		{"triangular ok", crowdtopk.TriangularScore(0, 0.5, 1), true},
		{"triangular bad mode", crowdtopk.TriangularScore(0, 2, 1), false},
		{"histogram ok", crowdtopk.HistogramScore([]float64{0, 1, 2}, []float64{1, 2}), true},
		{"histogram bad", crowdtopk.HistogramScore([]float64{0}, []float64{1}), false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if c.score.Valid() != c.valid {
				t.Fatalf("Valid() = %v, want %v", c.score.Valid(), c.valid)
			}
		})
	}
}

func TestNewDatasetRejectsInvalidScores(t *testing.T) {
	_, err := crowdtopk.NewDataset([]crowdtopk.Uncertain{crowdtopk.UniformScore(0, -1)})
	if err == nil {
		t.Fatal("invalid score accepted")
	}
	if _, err := crowdtopk.NewDataset(nil); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestDatasetNames(t *testing.T) {
	ds := testDataset(t)
	if got := ds.Name(2); got != "t2" {
		t.Fatalf("unnamed tuple = %q", got)
	}
	if err := ds.SetNames([]string{"a", "b", "c", "d", "e"}); err != nil {
		t.Fatal(err)
	}
	if got := ds.Name(2); got != "c" {
		t.Fatalf("named tuple = %q", got)
	}
	if err := ds.SetNames([]string{"too", "few"}); err == nil {
		t.Fatal("mismatched name count accepted")
	}
}

func TestProcessEndToEnd(t *testing.T) {
	ds := testDataset(t)
	cr, real, err := crowdtopk.SimulatedCrowd(ds, 1, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := crowdtopk.Process(ds, crowdtopk.Query{K: 3, Budget: 20, Seed: 3}, cr)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resolved {
		t.Fatalf("unresolved with generous budget: %+v", res)
	}
	if len(res.Ranking) != 3 || len(res.Names) != 3 {
		t.Fatalf("ranking %v names %v", res.Ranking, res.Names)
	}
	if d := crowdtopk.RankDistance(res.Ranking, real[:3]); d != 0 {
		t.Fatalf("distance to truth = %g with a perfect crowd", d)
	}
}

func TestProcessDefaultsAndValidation(t *testing.T) {
	ds := testDataset(t)
	cr, _, err := crowdtopk.SimulatedCrowd(ds, 1, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Defaults: T1On + MPO.
	res, err := crowdtopk.Process(ds, crowdtopk.Query{K: 2, Budget: 3, Seed: 4}, cr)
	if err != nil {
		t.Fatal(err)
	}
	if res.QuestionsAsked > 3 {
		t.Fatalf("budget exceeded: %d", res.QuestionsAsked)
	}
	if _, err := crowdtopk.Process(nil, crowdtopk.Query{K: 2, Budget: 1}, cr); err == nil {
		t.Fatal("nil dataset accepted")
	}
	if _, err := crowdtopk.Process(ds, crowdtopk.Query{K: 2, Budget: 1}, nil); err == nil {
		t.Fatal("nil crowd accepted")
	}
	if _, err := crowdtopk.Process(ds, crowdtopk.Query{K: 99, Budget: 1}, cr); err == nil {
		t.Fatal("K > N accepted")
	}
	bad := crowdtopk.Query{K: 2, Budget: 1, Measure: "nope"}
	if _, err := crowdtopk.Process(ds, bad, cr); err == nil {
		t.Fatal("unknown measure accepted")
	}
}

func TestProcessAllAlgorithms(t *testing.T) {
	ds := testDataset(t)
	for _, alg := range []crowdtopk.Algorithm{
		crowdtopk.Random, crowdtopk.Naive, crowdtopk.TBOff, crowdtopk.COff,
		crowdtopk.T1On, crowdtopk.Incr,
	} {
		t.Run(string(alg), func(t *testing.T) {
			cr, _, err := crowdtopk.SimulatedCrowd(ds, 1, 1, 5)
			if err != nil {
				t.Fatal(err)
			}
			res, err := crowdtopk.Process(ds, crowdtopk.Query{
				K: 2, Budget: 4, Algorithm: alg, Seed: 5,
			}, cr)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Ranking) != 2 {
				t.Fatalf("ranking = %v", res.Ranking)
			}
		})
	}
}

func TestSimulatedCrowdNoisy(t *testing.T) {
	ds := testDataset(t)
	cr, real, err := crowdtopk.SimulatedCrowd(ds, 0.8, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(real) != ds.Len() {
		t.Fatalf("real ranking size %d", len(real))
	}
	rel := cr.Reliability()
	if rel <= 0.8 || rel >= 1 {
		t.Fatalf("3-vote reliability = %g, want between single accuracy and 1", rel)
	}
	// The answer orientation must respect the caller's question direction.
	a := cr.Ask(crowdtopk.Question{I: real[0], J: real[len(real)-1]})
	b := cr.Ask(crowdtopk.Question{I: real[len(real)-1], J: real[0]})
	_ = a
	_ = b // direction checked via Process-level tests; here just no panic
}

func TestExpectedRankingAndPossibleOrderings(t *testing.T) {
	ds := testDataset(t)
	exp := ds.ExpectedRanking()
	if len(exp) != ds.Len() || exp[0] != 4 {
		t.Fatalf("expected ranking %v, want tuple 4 first (highest mean)", exp)
	}
	paths, probs, err := ds.PossibleOrderings(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != len(probs) || len(paths) < 2 {
		t.Fatalf("%d orderings, %d probs", len(paths), len(probs))
	}
	sum := 0.0
	for _, p := range probs {
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("ordering probabilities sum to %g", sum)
	}
}

func TestRankDistance(t *testing.T) {
	if d := crowdtopk.RankDistance([]int{1, 2, 3}, []int{1, 2, 3}); d != 0 {
		t.Fatalf("identical = %g", d)
	}
	if d := crowdtopk.RankDistance([]int{1, 2}, []int{3, 4}); d != 1 {
		t.Fatalf("disjoint = %g", d)
	}
}

func TestUncertainMean(t *testing.T) {
	if m := crowdtopk.UniformScore(2, 1).Mean(); m != 2 {
		t.Fatalf("mean = %g", m)
	}
	if m := (crowdtopk.Uncertain{}).Mean(); m != 0 {
		t.Fatalf("invalid score mean = %g", m)
	}
}

func TestAlgorithmAndMeasureNamesStable(t *testing.T) {
	// The public constants are part of the API; a rename is a breaking
	// change and must be caught.
	for _, s := range []string{
		string(crowdtopk.Random), string(crowdtopk.Naive), string(crowdtopk.TBOff),
		string(crowdtopk.COff), string(crowdtopk.AStarOff), string(crowdtopk.T1On),
		string(crowdtopk.AStarOn), string(crowdtopk.Incr),
	} {
		if s == "" || strings.ContainsAny(s, " \t") {
			t.Fatalf("suspicious algorithm name %q", s)
		}
	}
}

func TestConditionedRefinesBeliefs(t *testing.T) {
	ds := testDataset(t)
	// Tuples 1 and 2 overlap; condition on the mild upset "1 ranks above 2".
	ref, err := ds.Conditioned(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The original dataset is untouched and the refined one has fewer
	// possible orderings for the same K.
	before, _, err := ds.PossibleOrderings(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	after, _, err := ref.PossibleOrderings(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) >= len(before) {
		t.Fatalf("conditioning did not shrink the ordering space: %d → %d", len(before), len(after))
	}
	// Validation of the pair.
	if _, err := ds.Conditioned(0, 0); err == nil {
		t.Fatal("self-pair accepted")
	}
	if _, err := ds.Conditioned(-1, 2); err == nil {
		t.Fatal("out-of-range accepted")
	}
	// Conditioning on an impossible event (disjoint supports) must fail
	// loudly rather than return a broken dataset.
	if _, err := ds.Conditioned(0, 4); err == nil {
		t.Fatal("impossible event accepted")
	}
}
