# Convenience targets for the reproduction. The benchmarks regenerate the
# paper's figures; `bench` records the selection + Fig-1(b) families (the
# residual-sweep hot path), the persist family (WAL append, snapshot
# compaction, cold recovery) and the incremental family (live-engine
# per-answer update vs. full rebuild) to BENCH_selection.json via
# cmd/benchreport so before/after numbers live next to the code.

BENCHTIME ?= 20x

.PHONY: test race bench bench-smoke

test:
	go build ./... && go vet ./... && go test ./...

race:
	go test -race ./...

# Full recording run: refreshes BENCH_selection.json in place.
bench:
	go run ./cmd/benchreport -benchtime $(BENCHTIME) -out BENCH_selection.json

# CI smoke: one iteration per benchmark, written to a scratch file and
# compared (informationally) against the committed recording so selection
# and persistence regressions are visible in PR logs.
bench-smoke:
	go run ./cmd/benchreport -benchtime 1x -out /tmp/BENCH_selection.json -compare BENCH_selection.json
