# Convenience targets for the reproduction. The benchmarks regenerate the
# paper's figures; `bench` records the selection + Fig-1(b) families (the
# residual-sweep hot path), the persist family (WAL append, snapshot
# compaction, cold recovery) and the incremental family (live-engine
# per-answer update vs. full rebuild) to BENCH_selection.json via
# cmd/benchreport so before/after numbers live next to the code.

BENCHTIME ?= 20x
LOADGEN_DURATION ?= 10s
LOADGEN_LEVELS ?= 1,4,16

.PHONY: test race bench bench-smoke bench-serve

test:
	go build ./... && go vet ./... && go test ./...

race:
	go test -race ./...

# Full recording run: refreshes BENCH_selection.json in place.
bench:
	go run ./cmd/benchreport -benchtime $(BENCHTIME) -out BENCH_selection.json

# CI smoke: one iteration per benchmark, written to a scratch file and
# compared (informationally) against the committed recording so selection
# and persistence regressions are visible in PR logs.
bench-smoke:
	go run ./cmd/benchreport -benchtime 1x -out /tmp/BENCH_selection.json -compare BENCH_selection.json

# Capacity recording: boot a real serve process, sweep concurrency levels
# with the loadgen harness, and refresh BENCH_serve.json in place (throughput
# + p50/p95/p99 per-route latencies + shed/degraded counts per level).
bench-serve:
	go build -o /tmp/crowdtopk-bench ./cmd/crowdtopk
	/tmp/crowdtopk-bench serve -addr 127.0.0.1:18097 -log-format json >/tmp/crowdtopk-bench-serve.log 2>&1 & \
	SERVE_PID=$$!; \
	trap "kill $$SERVE_PID 2>/dev/null || true" EXIT; \
	for i in $$(seq 1 50); do curl -sf http://127.0.0.1:18097/health >/dev/null && break; sleep 0.2; done; \
	/tmp/crowdtopk-bench loadgen -target http://127.0.0.1:18097 -concurrency $(LOADGEN_LEVELS) -duration $(LOADGEN_DURATION) -out BENCH_serve.json; \
	kill $$SERVE_PID 2>/dev/null || true
