// Package crowdtopk processes top-K queries over uncertain data with
// crowdsourced uncertainty reduction, reproducing Ciceri, Fraternali,
// Martinenghi and Tagliasacchi, "Crowdsourcing for Top-K Query Processing
// over Uncertain Data" (ICDE 2016 / IEEE TKDE 28(1), 2016).
//
// Tuples have uncertain scores modelled as bounded continuous random
// variables. Overlapping score distributions leave the top-K result
// ambiguous: a whole tree of orderings (TPO) is compatible with the data.
// Asking a crowd pairwise questions — "does a rank above b?" — prunes that
// tree. Given a question budget, this library selects the questions that
// minimize the expected residual uncertainty of the result, using the
// paper's offline (TB-off, C-off, A*-off), online (T1-on, A*-on) and
// incremental (incr) strategies, under four uncertainty measures (entropy,
// weighted entropy, ORA- and MPO-distance).
//
// # Quickstart
//
//	scores := []crowdtopk.Uncertain{
//		crowdtopk.UniformScore(0.7, 0.2), // photo A: estimated 0.7 ± 0.1
//		crowdtopk.UniformScore(0.6, 0.3),
//		crowdtopk.UniformScore(0.8, 0.4),
//	}
//	ds, err := crowdtopk.NewDataset(scores)
//	...
//	res, err := crowdtopk.Process(ds, crowdtopk.Query{K: 2, Budget: 5}, myCrowd)
//	fmt.Println(res.Ranking, res.Resolved)
//
// A Crowd is anything that can answer comparison questions: a real
// crowdsourcing integration, an interactive prompt, or the simulator in this
// repository. See the examples/ directory for runnable end-to-end programs
// and DESIGN.md for the system inventory and experiment index.
//
// # Asynchronous sessions
//
// Process blocks on the Crowd callback, which suits simulations but not real
// platforms, where answers arrive minutes or hours later. NewSession inverts
// the callback into a pull/push state machine that holds the query open for
// as long as the crowd needs:
//
//	              NextQuestions            SubmitAnswer
//	┌─────────┐  (deliver work)  ┌──────────────────┐ ──┐
//	│ Created ├─────────────────▶│ AwaitingAnswers  │   │ answers condition
//	└────┬────┘                  └───────┬──────────┘ ◀─┘ the orderings
//	     │                               │
//	     │ nothing to ask                │ single ordering left ──▶ Converged
//	     │ (budget 0)                    │ questions spent,
//	     └──────────────▶ terminal ◀─────┘ uncertainty remains ──▶ Exhausted
//
// NextQuestions returns the strategy's currently best pending questions
// (idempotently — a crashed client pulls the same work again), SubmitAnswer
// accepts answers in any order within the issued set and conditions the tree
// through the same transition code the batch engine runs, and Result reports
// the current top-K belief in every state. Checkpoint serializes the whole
// session (dataset, configuration, conditioned orderings, answer log, RNG
// position) into a versioned JSON envelope; RestoreSession verifies the
// schema version and dataset digest and resumes mid-query, in this process
// or another. A session driven to completion returns exactly what Process
// returns for the same configuration and answers.
//
// The crowdtopk CLI serves these sessions over HTTP (`crowdtopk serve`):
// POST /v1/sessions creates or restores, GET questions / POST answers /
// GET result / GET checkpoint / DELETE drive the lifecycle, GET /v1/sessions
// lists known sessions, and GET /v1/stats exposes store, persistence and
// π-cache counters. See the README for curl exchanges.
//
// # Service core, codecs and the SDK
//
// Everything between the wire and the session state machine lives in a
// transport-agnostic core, internal/service: typed requests and views for
// every operation, typed errors (ErrNotFound, ErrFull, ErrBadInput,
// BatchError with its partial-accept count, StorageError for durable-tier
// failures), the two-tier session store, the shared worker budget,
// reservation-based load shedding, TTL eviction and graceful close. The
// layers above it are deliberately thin:
//
//	          ┌──────────────────────────────┐
//	HTTP ───▶ │ internal/server (codec)      │──┐   decode → call → encode;
//	          │  JSON in/out, statusFor      │  │   the ONE error→HTTP map
//	          └──────────────────────────────┘  ▼
//	                                     ┌────────────────────┐     ┌──────────────────┐
//	                                     │ internal/service   │────▶│ internal/session │
//	                                     │  typed ops, store, │     │  + persist, par  │
//	Go   ───▶ ┌────────────────────┐     │  typed errors      │     └──────────────────┘
//	embedders │ crowdtopk/sdk      │──┘  └────────────────────┘
//	          │  same ops, no HTTP │
//	          └────────────────────┘
//
// internal/server only translates: decode the request, call the service,
// encode the view (whose json tags are the canonical wire shape) or map the
// typed error to a status — handlers hold no orchestration logic. The public
// crowdtopk/sdk package is the second front door: the same lifecycle —
// persistence, hydration, eviction, stats included — as direct Go calls with
// no net/http anywhere in its API. A parity suite drives the e2e scenarios
// (including kill-hot crash recovery) through both doors and requires
// identical outcomes, so the transports cannot drift.
//
// With `crowdtopk serve -data-dir`, sessions also survive server crashes:
// the in-memory table becomes a cache over a durable file store
// (internal/persist), and every accepted answer takes the persist path
// alongside the in-memory transition:
//
//	POST answers          dirty hook    ┌────────────────┐  append (+fsync)
//	──────▶ live session ──────────────▶│ async persister│─────────────────▶ <data-dir>/sessions/<id>/
//	         (memory tier)              └────────────────┘  every N answers:    ├─ snapshot.json
//	            ▲   │                                       compact WAL into    └─ wal.log (CRC-framed,
//	            │   │ idle TTL: persist, then release       a fresh snapshot       seq-numbered answers)
//	   lazy     │   ▼
//	 hydration  └── disk ── restore snapshot, replay WAL tail through SubmitAnswer
//	                        (torn tail dropped; corruption → typed error)
//
// On boot the server scans the store so every persisted session is
// immediately addressable; a killed server restarted on the same data dir
// finishes its queries with results identical to an uninterrupted run.
// Graceful shutdown (SIGINT/SIGTERM) drains in-flight requests, then
// flushes every dirty session to disk before exit, bounded by a shutdown
// deadline so a wedged disk cannot hang SIGTERM (sessions left dirty are
// logged by id).
//
// # Fault tolerance
//
// The durable tier assumes the disk will fail and degrades instead of
// lying. Failed writes retry with exponential backoff + jitter under a
// per-session budget; every outcome feeds a circuit breaker whose state
// decides how the process serves:
//
//	              ≥5 consecutive
//	              write failures            cooldown expires
//	┌────────┐ ──────────────────▶ ┌──────┐ ───────────────▶ ┌───────────┐
//	│ closed │                     │ open │                  │ half-open │
//	└────────┘ ◀────────────────── └──────┘ ◀─────────────── └───────────┘
//	   ▲  normal serving              │  DEGRADED MODE:         │ one probe
//	   │                              │  serve from live tier,  │ write
//	   └── probe succeeds             │  queue dirty sessions,  │
//	       (dirty queue drains,       │  refuse evictions,      │ probe fails:
//	        /ready 200 again)         │  /ready 503 + reason    ▼ reopen, cooldown ×2
//
// Sessions that exhaust their retry budget park on a slow cadence — still
// dirty, still queued, never dropped — and any successful write un-parks
// them all; recovery needs no operator action. A corrupt durable copy
// (digest or CRC failure on hydration or boot) is moved to
// <data-dir>/quarantine/<id>/ with a typed reason instead of failing
// startup or answering 500 forever: the session lists as "quarantined" and
// its API calls return 410 Gone. `crowdtopk fsck` checks a stopped
// server's data dir offline (and repairs torn WAL tails); the hidden
// `serve -fault-spec` flag drives the same deterministic fault injector
// the torture tests use (injected errors, torn writes, latency, wedge).
//
// # Numerical substrate
//
// All probabilities flow from the internal score-distribution kernel
// (internal/dist). Pairwise dominance probabilities P(X > Y) — the hottest
// computation in tree construction and question selection — are evaluated
// analytically whenever a closed form exists (uniform/uniform pairs,
// Gaussian/Gaussian pairs, point masses, disjoint supports) and by trapezoid
// quadrature over the left operand's support otherwise. Gaussian
// scores are truncated at ±4σ and renormalized so every score has bounded
// support, which keeps the shared evaluation grids finite.
//
// # Selection engine
//
// Question selection evaluates the expected residual uncertainty R_Q(T_K)
// for every candidate question. internal/selection runs that sweep on a
// flat, index-based engine: the leaf set is snapshotted once into an arena
// (paths flattened into one backing array, weights in one vector), a
// consistency index classifies every leaf against every candidate question
// in a single pass (packed byte rows plus per-class aggregates), and
// partition cells are index/weight views over the arena — splitting under a
// hypothetical answer copies indices, never paths. Pairwise probabilities
// are resolved once per sweep into a dense matrix, measures evaluate
// weight/path views in place without normalized copies
// (uncertainty.ViewMeasure), and candidate questions fan across a
// configurable worker count with deterministic output. The README's
// Performance section records the measured effect (≈4–11× on the residual
// sweeps, 40–70× fewer allocations, identical selected batches).
//
// # Concurrency model
//
// The hot paths are parallel and deterministic. Tree construction splits
// the TPO into disjoint subtree jobs executed by a worker pool (Query.
// Workers; 0 = all CPUs, 1 = sequential), each worker owning its scratch
// buffers; children are emitted in candidate order, so the resulting tree —
// child order, leaf order, every probability bit — is identical for every
// worker count. Pairwise dominance probabilities π_ij are memoized in a
// process-wide concurrency-safe cache (internal/pcache) keyed by
// distribution identity, so repeated selection sweeps and repeated trials
// over the same dataset never re-integrate a pair. Experiment trials run
// concurrently with per-trial RNGs derived from the seed and aggregate in
// trial order, making their statistics independent of scheduling. Crowd
// questions are always asked one at a time, in order — parallelism never
// changes what the crowd sees.
//
// # Observability
//
// The serving stack (crowdtopk serve and the sdk package) is instrumented
// end to end through internal/obs, a dependency-free metrics core: atomic
// counters, gauges and fixed-bucket latency histograms collected in one
// process-wide registry and rendered in Prometheus text exposition format.
// The HTTP server exposes the scrape on GET /metrics alongside GET /health
// (liveness) and GET /ready (readiness: boot scan finished, session pool
// has capacity, durable writes succeeding, circuit breaker closed);
// embedders reach the same data
// via sdk.Client.Metrics and sdk.Client.Health. Every layer reports in:
// HTTP request latency by route, WAL append/fsync latency, snapshot and
// recovery durations, session lifecycle transitions, pool saturation, and
// the π-cache hit rate. Accepted answer batches can additionally be traced
// through an asynchronous NDJSON audit log (internal/obs.AuditLog) that
// never blocks the answer path — a wedged sink drops events and counts the
// drops instead. Admission control (per-client token-bucket rate limiting
// plus a global max-inflight cap) lives in the service core, so abusive
// clients shed with 429/Retry-After while everyone else keeps flowing. See
// the README's Operations section for flags and a scrape config.
//
// Latency is attributed per request by a dependency-free tracer (also in
// internal/obs): the HTTP codec opens a root span per request — joining an
// inbound W3C traceparent and echoing one back — and every layer beneath
// nests a child span, forming a tree whose self times (duration minus
// children) partition the root duration exactly:
//
//	http.request (root)                duration 12.0ms   self  0.4ms
//	└─ service.answers                 duration 11.6ms   self  0.7ms
//	   ├─ session.apply                duration  1.9ms   self  1.9ms
//	   └─ selection.plan               duration  9.0ms   self  9.0ms
//	                                            Σ self = 12.0ms = root
//
// Each span charges its self time to its component (the name's prefix:
// http, service, session, selection, persist), so "where did the
// milliseconds go" has one non-overlapping answer per trace, aggregated
// across requests as crowdtopk_span_self_seconds{component} histograms on
// /metrics. Deterministic head sampling by trace id (serve -trace-sample)
// bounds the cost; requests slower than -slow-ms are retained and logged
// with their breakdown regardless of the sampling verdict. Retained span
// trees are served from a bounded ring at GET /debug/traces, and the trace
// id links each trace to its access-log line and audit events. A rate-0
// tracer (the default for embedders) is fully inert: spans are nil and the
// hot paths pay nothing. `crowdtopk loadgen` closes the loop on capacity —
// it sweeps concurrency levels of full simulated-crowd session lifecycles
// against a serve process (or the in-process SDK) and records throughput
// and per-route latency percentiles into BENCH_serve.json (make
// bench-serve).
package crowdtopk
