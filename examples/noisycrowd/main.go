// Noisy crowd: the same query processed by crowds of decreasing reliability,
// with and without majority voting — §III.C of the paper. With unreliable
// workers answers can no longer prune orderings outright; the engine
// reweights them with Bayes' rule instead, and majority voting buys back
// accuracy at three worker-answers per question. Results are averaged over
// many sampled worlds so the systematic effect is visible.
//
// Run with:
//
//	go run ./examples/noisycrowd
package main

import (
	"fmt"
	"log"

	crowdtopk "crowdtopk"
)

func main() {
	// Ten restaurants with uncertain ratings.
	centers := []float64{4.4, 4.3, 4.5, 4.1, 3.9, 4.6, 4.2, 3.8, 4.0, 4.35}
	scores := make([]crowdtopk.Uncertain, len(centers))
	for i, c := range centers {
		scores[i] = crowdtopk.UniformScore(c, 0.8)
	}
	ds, err := crowdtopk.NewDataset(scores)
	if err != nil {
		log.Fatal(err)
	}

	const (
		k      = 3
		budget = 12
		trials = 25
	)
	fmt.Printf("top-%d over %d restaurants, budget %d questions, %d worlds per setting\n\n",
		k, len(centers), budget, trials)
	fmt.Println("worker accuracy | votes | mean distance to truth | mean residual orderings")

	type setting struct {
		accuracy float64
		votes    int
	}
	for _, s := range []setting{{1.0, 1}, {0.9, 1}, {0.7, 1}, {0.7, 3}} {
		var sumDist, sumOrd float64
		for trial := 0; trial < trials; trial++ {
			seed := int64(1000 + trial)
			cr, real, err := crowdtopk.SimulatedCrowd(ds, s.accuracy, s.votes, seed)
			if err != nil {
				log.Fatal(err)
			}
			res, err := crowdtopk.Process(ds, crowdtopk.Query{K: k, Budget: budget, Seed: seed}, cr)
			if err != nil {
				log.Fatal(err)
			}
			sumDist += crowdtopk.RankDistance(res.Ranking, real[:k])
			sumOrd += float64(res.Orderings)
		}
		fmt.Printf("      %4.2f      |   %d   |         %.4f         | %8.1f\n",
			s.accuracy, s.votes, sumDist/trials, sumOrd/trials)
	}
	fmt.Println("\nperfect workers prune orderings to 1; noisy workers only concentrate")
	fmt.Println("probability mass, and majority voting (3 answers/question) recovers")
	fmt.Println("most of the lost precision at triple the cost.")
}
