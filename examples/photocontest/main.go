// Photo contest: pick the top-2 photos when aesthetic scores come from a
// model that outputs score histograms — the social-media motivation of the
// paper's introduction. The contest jury (the crowd) resolves ambiguous
// pairs with side-by-side comparisons, selected with the offline C-off
// strategy so all jury tasks can be published as a single batch.
//
// Run with:
//
//	go run ./examples/photocontest
package main

import (
	"fmt"
	"log"

	crowdtopk "crowdtopk"
)

func main() {
	// A vision model scored each photo; it emits a histogram over the
	// score range rather than a point estimate.
	photos := []struct {
		name    string
		edges   []float64
		weights []float64
	}{
		{"sunrise", []float64{0.5, 0.6, 0.7, 0.8, 0.9}, []float64{1, 3, 4, 2}},
		{"market", []float64{0.4, 0.55, 0.7, 0.85}, []float64{2, 5, 3}},
		{"harbor-fog", []float64{0.55, 0.65, 0.75, 0.85, 0.95}, []float64{1, 2, 4, 3}},
		{"street-cat", []float64{0.3, 0.5, 0.7, 0.9}, []float64{1, 4, 5}},
		{"old-bridge", []float64{0.45, 0.6, 0.75, 0.9}, []float64{2, 4, 2}},
		{"neon-rain", []float64{0.5, 0.65, 0.8, 0.95}, []float64{3, 4, 3}},
	}
	scores := make([]crowdtopk.Uncertain, len(photos))
	names := make([]string, len(photos))
	for i, p := range photos {
		scores[i] = crowdtopk.HistogramScore(p.edges, p.weights)
		names[i] = p.name
	}
	ds, err := crowdtopk.NewDataset(scores)
	if err != nil {
		log.Fatal(err)
	}
	if err := ds.SetNames(names); err != nil {
		log.Fatal(err)
	}

	const k = 2
	orderings, probs, err := ds.PossibleOrderings(k, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("the model's histograms admit %d possible podiums; most likely:\n", len(orderings))
	best, bestP := 0, probs[0]
	for i, p := range probs {
		if p > bestP {
			best, bestP = i, p
		}
	}
	fmt.Printf("  %s + %s with probability %.2f — too uncertain to publish\n",
		ds.Name(orderings[best][0]), ds.Name(orderings[best][1]), bestP)

	// Jury of three judges per question, each judge 85% reliable.
	cr, real, err := crowdtopk.SimulatedCrowd(ds, 0.85, 3, 2024)
	if err != nil {
		log.Fatal(err)
	}

	res, err := crowdtopk.Process(ds, crowdtopk.Query{
		K: k, Budget: 6,
		Algorithm: crowdtopk.COff, // one batch of jury tasks, published at once
		Measure:   crowdtopk.MeasureORA,
		Seed:      2024,
	}, cr)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\npublished %d jury comparisons (3 judges each)\n", res.QuestionsAsked)
	fmt.Printf("podium: 1. %s  2. %s\n", res.Names[0], res.Names[1])
	fmt.Printf("orderings remaining: %d, residual U_ORA: %.4f\n", res.Orderings, res.Uncertainty)
	fmt.Printf("true podium was %s + %s; distance %.3f\n",
		ds.Name(real[0]), ds.Name(real[1]), crowdtopk.RankDistance(res.Ranking, real[:k]))
}
