// Quickstart: rank five products with uncertain review scores, asking a
// simulated crowd up to four comparison questions to settle the top 3.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	crowdtopk "crowdtopk"
)

func main() {
	// Each product's quality score was estimated from reviews; the width
	// of each interval reflects how few or noisy the reviews were.
	scores := []crowdtopk.Uncertain{
		crowdtopk.UniformScore(4.1, 0.6), // espresso-one: many reviews
		crowdtopk.UniformScore(4.3, 1.4), // brewmaster:   few reviews
		crowdtopk.UniformScore(3.9, 1.0), // kettle-pro
		crowdtopk.UniformScore(4.4, 1.2), // moka-classic
		crowdtopk.UniformScore(3.2, 0.8), // drip-basic
	}
	ds, err := crowdtopk.NewDataset(scores)
	if err != nil {
		log.Fatal(err)
	}
	if err := ds.SetNames([]string{"espresso-one", "brewmaster", "kettle-pro", "moka-classic", "drip-basic"}); err != nil {
		log.Fatal(err)
	}

	// Without the crowd: the expected-score ranking ignores uncertainty.
	fmt.Println("expected-score ranking (no crowd):")
	for i, id := range ds.ExpectedRanking()[:3] {
		fmt.Printf("  %d. %s\n", i+1, ds.Name(id))
	}

	// How ambiguous is the data? Enumerate the possible top-3 orderings.
	orderings, probs, err := ds.PossibleOrderings(3, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nthe data admits %d possible top-3 orderings, e.g.:\n", len(orderings))
	for i := 0; i < len(orderings) && i < 3; i++ {
		fmt.Printf("  %v with probability %.3f\n", orderings[i], probs[i])
	}

	// A simulated crowd of perfectly reliable judges (seed fixes the
	// "true" quality draw). Real applications implement the Crowd
	// interface against their task marketplace.
	cr, realRanking, err := crowdtopk.SimulatedCrowd(ds, 1.0, 1, 42)
	if err != nil {
		log.Fatal(err)
	}

	res, err := crowdtopk.Process(ds, crowdtopk.Query{K: 3, Budget: 4, Seed: 42}, cr)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nafter %d crowd questions (budget 4):\n", res.QuestionsAsked)
	for i, name := range res.Names {
		fmt.Printf("  %d. %s\n", i+1, name)
	}
	fmt.Printf("resolved to a single ordering: %v (%d still possible)\n", res.Resolved, res.Orderings)
	fmt.Printf("true top-3 was %v; distance of our answer: %.3f\n",
		realRanking[:3], crowdtopk.RankDistance(res.Ranking, realRanking[:3]))
}
