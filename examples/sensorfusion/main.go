// Sensor fusion: rank monitoring stations by a pollutant reading whose value
// is uncertain due to sensor noise — the sensing-infrastructure motivation
// of the paper's introduction. Each station reports a Gaussian estimate
// (mean ± calibration error); a field technician ("the crowd") can be sent
// to compare two stations with a reference instrument, and every dispatch
// costs money, so the budget of comparisons is limited.
//
// Run with:
//
//	go run ./examples/sensorfusion
package main

import (
	"fmt"
	"log"

	crowdtopk "crowdtopk"
)

type station struct {
	name  string
	mean  float64 // reported PM2.5 µg/m³
	sigma float64 // sensor calibration error
}

func main() {
	stations := []station{
		{"riverside", 38.1, 2.8},
		{"old-town", 41.5, 4.0}, // cheap sensor: wide error
		{"harbor", 44.2, 1.2},
		{"station-4", 39.9, 3.5},
		{"hillcrest", 36.0, 1.5},
		{"depot", 42.7, 3.0},
		{"airport", 40.8, 2.2},
	}
	scores := make([]crowdtopk.Uncertain, len(stations))
	names := make([]string, len(stations))
	for i, s := range stations {
		scores[i] = crowdtopk.GaussianScore(s.mean, s.sigma)
		names[i] = s.name
	}
	ds, err := crowdtopk.NewDataset(scores)
	if err != nil {
		log.Fatal(err)
	}
	if err := ds.SetNames(names); err != nil {
		log.Fatal(err)
	}

	const k = 3 // the three most polluted stations get the mobile lab
	orderings, _, err := ds.PossibleOrderings(k, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sensor noise admits %d possible top-%d rankings\n", len(orderings), k)

	// Field technicians are right ~95%% of the time (reference instrument
	// drift); answers therefore reweight rather than prune.
	cr, real, err := crowdtopk.SimulatedCrowd(ds, 0.95, 1, 7)
	if err != nil {
		log.Fatal(err)
	}

	for _, budget := range []int{0, 3, 6, 10} {
		res, err := crowdtopk.Process(ds, crowdtopk.Query{
			K: k, Budget: budget, Algorithm: crowdtopk.T1On, Seed: 7,
		}, cr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("budget %2d → dispatches used %2d, best guess %v, distance to truth %.3f (%d orderings left)\n",
			budget, res.QuestionsAsked, res.Names, crowdtopk.RankDistance(res.Ranking, real[:k]), res.Orderings)
	}
	top := make([]string, k)
	for i, id := range real[:k] {
		top[i] = ds.Name(id)
	}
	fmt.Printf("ground truth this season: %v\n", top)
}
