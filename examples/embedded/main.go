// Embedded: run the full crowdtopk serving stack in-process with the sdk
// package — no HTTP server, no sockets — including durable file-backed
// session storage, checkpoint export and restore.
//
// The program plays both sides of a crowd-powered top-K query: it creates a
// managed session, pulls the planned comparison questions the way a crowd
// platform integration would, answers them with a simulated crowd, then
// checkpoints the session, deletes it, restores it from the checkpoint and
// drives it to termination — proving the restored session picks up exactly
// where the original left off.
//
// Run with:
//
//	go run ./examples/embedded
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"

	crowdtopk "crowdtopk"
	"crowdtopk/sdk"
)

func main() {
	// Same product workload as the quickstart, but served through the
	// embeddable client instead of a one-shot Process call.
	scores := []crowdtopk.Uncertain{
		crowdtopk.UniformScore(4.1, 0.6), // espresso-one: many reviews
		crowdtopk.UniformScore(4.3, 1.4), // brewmaster:   few reviews
		crowdtopk.UniformScore(3.9, 1.0), // kettle-pro
		crowdtopk.UniformScore(4.4, 1.2), // moka-classic
		crowdtopk.UniformScore(3.2, 0.8), // drip-basic
	}
	ds, err := crowdtopk.NewDataset(scores)
	if err != nil {
		log.Fatal(err)
	}
	if err := ds.SetNames([]string{"espresso-one", "brewmaster", "kettle-pro", "moka-classic", "drip-basic"}); err != nil {
		log.Fatal(err)
	}

	// A file-backed client: every accepted answer is write-ahead logged, so
	// a process that dies here resumes from the same directory.
	dir, err := os.MkdirTemp("", "crowdtopk-embedded-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	client, err := sdk.New(sdk.Options{Storage: &sdk.Storage{Dir: dir}})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	info, err := client.CreateSession(sdk.SessionConfig{
		Dataset: ds,
		Query:   crowdtopk.Query{K: 3, Budget: 8, Seed: 42},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session %s created: %d tuples, budget %d, %d possible top-3 orderings\n",
		info.ID, info.Tuples, info.Budget, info.Orderings)

	// The crowd. Real applications route prompts to human judges; the
	// simulated crowd answers from a fixed "true" quality draw.
	cr, realRanking, err := crowdtopk.SimulatedCrowd(ds, 1.0, 1, 42)
	if err != nil {
		log.Fatal(err)
	}

	// Answer the first few questions, then checkpoint mid-query.
	answered := 0
	if _, err := drive(client, info.ID, cr, &answered, 3); err != nil {
		log.Fatal(err)
	}

	var checkpoint bytes.Buffer
	if err := client.Checkpoint(info.ID, &checkpoint); err != nil {
		log.Fatal(err)
	}
	if err := client.Delete(info.ID); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpointed after %d answers (%d bytes), session deleted\n",
		answered, checkpoint.Len())

	// Restore under a fresh id — on this client, another process, or the
	// HTTP API: the envelope is self-contained — and finish the query.
	restored, err := client.RestoreSession(checkpoint.Bytes())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored as %s (asked %d of %d)\n", restored.ID, restored.Asked, restored.Budget)
	res, err := drive(client, restored.ID, cr, &answered, -1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nafter %d crowd questions (%s):\n", res.Asked, res.State)
	for i, name := range res.Names {
		fmt.Printf("  %d. %s\n", i+1, name)
	}
	fmt.Printf("resolved to a single ordering: %v (%d still possible)\n", res.Resolved, res.Orderings)
	fmt.Printf("true top-3 was %v; distance of our answer: %.3f\n",
		realRanking[:3], crowdtopk.RankDistance(res.Ranking, realRanking[:3]))

	client.Flush() // drain the async persister so the counters below are settled
	stats := client.Stats()
	if stats.Store.Persist != nil {
		fmt.Printf("\ndurability: %d WAL appends, %d snapshots, %d fsyncs in %s\n",
			stats.Store.Persist.WALAppends, stats.Store.Persist.Snapshots,
			stats.Store.Persist.Fsyncs, dir)
	}
}

// drive pulls and answers questions until the session terminates or limit
// answers have been submitted (limit < 0 means run to termination), then
// returns the session's current result.
func drive(client *sdk.Client, id string, cr crowdtopk.Crowd, answered *int, limit int) (sdk.Result, error) {
	for limit < 0 || *answered < limit {
		qs, err := client.Questions(id, 1)
		if err != nil {
			return sdk.Result{}, err
		}
		if len(qs.Questions) == 0 {
			break // converged or exhausted
		}
		q := qs.Questions[0]
		ans := cr.Ask(crowdtopk.Question{I: q.I, J: q.J})
		if _, err := client.SubmitAnswers(id, ans); err != nil {
			return sdk.Result{}, err
		}
		*answered++
	}
	return client.Result(id)
}
