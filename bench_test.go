// Benchmarks regenerating every table and figure of the paper's evaluation
// (§IV). Each benchmark family corresponds to one experiment of DESIGN.md's
// index (E1–E7); the emitted custom metrics are the figures' y-values:
//
//	distance    — D(ω_r, T_K), Fig. 1(a) and the §IV claims
//	ns/op       — CPU time per complete run, Fig. 1(b)
//	questions   — crowd questions actually asked
//	leaves      — orderings remaining in the tree
//
// The workloads are scaled to finish in seconds rather than the paper's
// hours; EXPERIMENTS.md records the full-scale runs produced with
// `crowdtopk run`.
package crowdtopk_test

import (
	"fmt"
	"testing"

	"crowdtopk/internal/dataset"
	"crowdtopk/internal/engine"
	"crowdtopk/internal/selection"
	"crowdtopk/internal/tpo"
	"crowdtopk/internal/uncertainty"
)

// benchOptions is the shared benchmark workload: small enough for -bench=.
// to complete in minutes, uncertain enough that every algorithm has work to
// do (|Q_K| ≈ 30, ≈1.5k orderings).
func benchOptions() engine.ExpOptions {
	return engine.ExpOptions{N: 16, K: 4, Width: 2.6, Spacing: 0.5, Trials: 1, Seed: 2016}
}

func benchConfig(b *testing.B, alg string, budget int) engine.Config {
	b.Helper()
	cfg, err := engine.ConfigFor(benchOptions(), alg)
	if err != nil {
		b.Fatal(err)
	}
	cfg.Budget = budget
	return cfg
}

// runAndReport runs the configuration b.N times, reporting the paper's
// metrics.
func runAndReport(b *testing.B, cfg engine.Config) {
	b.Helper()
	var dist, questions, leaves float64
	for i := 0; i < b.N; i++ {
		c := cfg
		c.Seed = cfg.Seed + int64(i) // fresh world per iteration
		res, err := engine.Run(c)
		if err != nil {
			b.Fatal(err)
		}
		dist += res.FinalDistance
		questions += float64(res.Asked)
		leaves += float64(res.FinalLeaves)
	}
	n := float64(b.N)
	b.ReportMetric(dist/n, "distance")
	b.ReportMetric(questions/n, "questions")
	b.ReportMetric(leaves/n, "leaves")
}

// BenchmarkFig1a regenerates Figure 1(a): the distance to the real ordering
// per algorithm and budget. Read the `distance` metric column; it must
// decrease with B and order T1-on ≤ C-off ≤ TB-off ≤ incr < naive < random
// at matching budgets.
func BenchmarkFig1a(b *testing.B) {
	for _, alg := range engine.Fig1aAlgorithms {
		for _, budget := range []int{0, 5, 10, 20} {
			b.Run(fmt.Sprintf("%s/B=%d", alg, budget), func(b *testing.B) {
				runAndReport(b, benchConfig(b, alg, budget))
			})
		}
	}
}

// BenchmarkFig1b regenerates Figure 1(b): CPU time per run as the budget
// grows. The ns/op column is the figure's y-axis; the claim is the relative
// ordering incr ≪ TB-off < T1-on ≤ C-off.
func BenchmarkFig1b(b *testing.B) {
	for _, alg := range []string{engine.AlgT1On, engine.AlgTBOff, engine.AlgCOff, engine.AlgIncr} {
		for _, budget := range []int{5, 10, 20} {
			b.Run(fmt.Sprintf("%s/B=%d", alg, budget), func(b *testing.B) {
				runAndReport(b, benchConfig(b, alg, budget))
			})
		}
	}
}

// BenchmarkMeasures regenerates the §IV measure comparison (E3): T1-on
// driven by each uncertainty measure. Structure-aware measures (Hw, ORA,
// MPO) should reach distances at or below plain entropy H.
func BenchmarkMeasures(b *testing.B) {
	for _, m := range []string{"H", "Hw", "ORA", "MPO"} {
		b.Run(m, func(b *testing.B) {
			cfg := benchConfig(b, engine.AlgT1On, 10)
			meas, err := uncertainty.New(m)
			if err != nil {
				b.Fatal(err)
			}
			cfg.Measure = meas
			runAndReport(b, cfg)
		})
	}
}

// BenchmarkNoisyWorkers regenerates the noisy-crowd experiment (E4): lower
// accuracy slows uncertainty reduction; majority voting recovers it.
func BenchmarkNoisyWorkers(b *testing.B) {
	type setting struct {
		name     string
		accuracy float64
		votes    int
	}
	for _, s := range []setting{
		{"p=1.0", 1, 1}, {"p=0.85", 0.85, 1}, {"p=0.7", 0.7, 1}, {"p=0.7-maj3", 0.7, 3},
	} {
		b.Run(s.name, func(b *testing.B) {
			cfg := benchConfig(b, engine.AlgT1On, 10)
			var dist float64
			for i := 0; i < b.N; i++ {
				res, err := engine.RunNoisyTrial(cfg, s.accuracy, s.votes, cfg.Seed+int64(i))
				if err != nil {
					b.Fatal(err)
				}
				dist += res.FinalDistance
			}
			b.ReportMetric(dist/float64(b.N), "distance")
		})
	}
}

// BenchmarkNonUniform regenerates the §IV distribution-shape experiment
// (E5): the algorithms work unchanged with Gaussian and triangular scores.
func BenchmarkNonUniform(b *testing.B) {
	for _, fam := range []dataset.Family{dataset.Uniform, dataset.Gaussian, dataset.Triangular} {
		b.Run(string(fam), func(b *testing.B) {
			o := benchOptions()
			ds, err := dataset.Generate(dataset.Spec{
				N: o.N, Spacing: o.Spacing, Width: o.Width, Family: fam, Seed: o.Seed,
			})
			if err != nil {
				b.Fatal(err)
			}
			cfg := benchConfig(b, engine.AlgT1On, 10)
			cfg.Dists = ds
			runAndReport(b, cfg)
		})
	}
}

// BenchmarkTPOBuild regenerates the scalability experiment (E6): full TPO
// construction cost versus N and K.
func BenchmarkTPOBuild(b *testing.B) {
	for _, n := range []int{10, 15, 20} {
		for _, k := range []int{3, 4, 5} {
			b.Run(fmt.Sprintf("N=%d/K=%d", n, k), func(b *testing.B) {
				ds, err := dataset.Generate(dataset.Spec{N: n, Width: 2.4, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				var leaves float64
				for i := 0; i < b.N; i++ {
					tree, err := tpo.Build(ds, k, tpo.BuildOptions{GridSize: 512})
					if err != nil {
						b.Fatal(err)
					}
					leaves += float64(tree.NumLeaves())
				}
				b.ReportMetric(leaves/float64(b.N), "leaves")
			})
		}
	}
}

// BenchmarkIncrVsFull regenerates the incr half of E6: processing cost of
// incremental versus full materialization at equal budget.
func BenchmarkIncrVsFull(b *testing.B) {
	for _, alg := range []string{engine.AlgTBOff, engine.AlgIncr} {
		b.Run(alg, func(b *testing.B) {
			o := benchOptions()
			o.N, o.K = 18, 5
			cfg, err := engine.ConfigFor(o, alg)
			if err != nil {
				b.Fatal(err)
			}
			cfg.Budget = 10
			runAndReport(b, cfg)
		})
	}
}

// BenchmarkAStarOptimality regenerates E7: A*-off against exhaustive subset
// search on a small instance (both must find batches of equal expected
// residual uncertainty; A* explores far fewer states).
func BenchmarkAStarOptimality(b *testing.B) {
	o := engine.ExpOptions{N: 8, K: 3, Width: 2.0, Trials: 1, Seed: 5}
	for _, alg := range []string{engine.AlgAStarOff, engine.AlgExhaustive} {
		for _, budget := range []int{2, 3} {
			b.Run(fmt.Sprintf("%s/B=%d", alg, budget), func(b *testing.B) {
				cfg, err := engine.ConfigFor(o, alg)
				if err != nil {
					b.Fatal(err)
				}
				cfg.Measure = uncertainty.Entropy{}
				cfg.Budget = budget
				runAndReport(b, cfg)
			})
		}
	}
}

// BenchmarkSelectionPrimitives measures the question-scoring hot path that
// dominates Fig. 1(b): one full R_q sweep over Q_K (a fresh flat engine per
// iteration, as every selection step pays), sequentially and fanned across
// GOMAXPROCS workers, plus the C-off conditional batch as the deepest
// consumer of incremental cell splitting.
func BenchmarkSelectionPrimitives(b *testing.B) {
	o := benchOptions()
	cfg, err := engine.ConfigFor(o, engine.AlgT1On)
	if err != nil {
		b.Fatal(err)
	}
	tree, err := tpo.Build(cfg.Dists, cfg.K, cfg.Build)
	if err != nil {
		b.Fatal(err)
	}
	ls := tree.LeafSet()
	for _, m := range []string{"H", "Hw", "MPO"} {
		for _, workers := range []int{1, -1} {
			name := "QuestionResiduals/" + m
			if workers != 1 {
				name = "QuestionResidualsParallel/" + m
			}
			b.Run(name, func(b *testing.B) {
				meas, err := uncertainty.New(m)
				if err != nil {
					b.Fatal(err)
				}
				ctx := &selection.Context{Tree: tree, Measure: meas, Workers: workers}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					qs, _ := selection.QuestionResiduals(ls, ctx)
					if len(qs) == 0 {
						b.Fatal("no questions")
					}
				}
			})
		}
	}
	b.Run("ConditionalBatch/MPO", func(b *testing.B) {
		meas, err := uncertainty.New("MPO")
		if err != nil {
			b.Fatal(err)
		}
		ctx := &selection.Context{Tree: tree, Measure: meas}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			batch, err := (selection.COff{}).SelectBatch(ls, 5, ctx)
			if err != nil || len(batch) == 0 {
				b.Fatalf("C-off batch: %v (%d questions)", err, len(batch))
			}
		}
	})
}
