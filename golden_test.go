package crowdtopk_test

import (
	"testing"

	crowdtopk "crowdtopk"
)

// TestProcessGolden pins the complete observable behavior of Process on a
// fixed workload: the exact final ranking, question count, and resolution
// state under a perfect simulated crowd with a fixed seed. The distribution
// kernel (internal/dist) feeds every probability in this pipeline, so any
// numerical drift there — a changed quadrature rule, a reordered fast path,
// a different grid — surfaces here as a changed ranking or question count.
// If this test fails after an intentional kernel change, re-derive the
// constants by running with -v and update them in the same commit.
func TestProcessGolden(t *testing.T) {
	scores := []crowdtopk.Uncertain{
		crowdtopk.UniformScore(1.0, 1.6),
		crowdtopk.UniformScore(1.3, 1.6),
		crowdtopk.UniformScore(1.6, 1.6),
		crowdtopk.UniformScore(1.9, 1.6),
		crowdtopk.UniformScore(2.2, 1.6),
		crowdtopk.UniformScore(2.5, 1.6),
	}
	ds, err := crowdtopk.NewDataset(scores)
	if err != nil {
		t.Fatal(err)
	}
	cr, real, err := crowdtopk.SimulatedCrowd(ds, 1, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	res, err := crowdtopk.Process(ds, crowdtopk.Query{K: 3, Budget: 30, Seed: 42}, cr)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("ranking=%v questions=%d resolved=%v orderings=%d real=%v",
		res.Ranking, res.QuestionsAsked, res.Resolved, res.Orderings, real)

	wantRanking := []int{5, 2, 4}
	wantQuestions := 7
	if !res.Resolved {
		t.Fatalf("not resolved within budget: %+v", res)
	}
	if res.Orderings != 1 {
		t.Fatalf("orderings = %d, want 1", res.Orderings)
	}
	if len(res.Ranking) != len(wantRanking) {
		t.Fatalf("ranking = %v", res.Ranking)
	}
	for i := range wantRanking {
		if res.Ranking[i] != wantRanking[i] {
			t.Fatalf("ranking = %v, want %v", res.Ranking, wantRanking)
		}
	}
	if res.QuestionsAsked != wantQuestions {
		t.Fatalf("questions = %d, want %d", res.QuestionsAsked, wantQuestions)
	}
	// A perfect crowd must land exactly on the sampled world's top-3.
	if d := crowdtopk.RankDistance(res.Ranking, real[:3]); d != 0 {
		t.Fatalf("distance to ground truth = %g", d)
	}
}

// TestProcessGoldenNoisy pins the noisy-crowd path (Bayesian reweighting
// instead of hard pruning) on the same workload.
func TestProcessGoldenNoisy(t *testing.T) {
	scores := []crowdtopk.Uncertain{
		crowdtopk.UniformScore(1.0, 1.6),
		crowdtopk.UniformScore(1.3, 1.6),
		crowdtopk.UniformScore(1.6, 1.6),
		crowdtopk.UniformScore(1.9, 1.6),
		crowdtopk.UniformScore(2.2, 1.6),
		crowdtopk.UniformScore(2.5, 1.6),
	}
	ds, err := crowdtopk.NewDataset(scores)
	if err != nil {
		t.Fatal(err)
	}
	cr, _, err := crowdtopk.SimulatedCrowd(ds, 0.8, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := crowdtopk.Process(ds, crowdtopk.Query{K: 3, Budget: 10, Seed: 7}, cr)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("noisy ranking=%v questions=%d resolved=%v orderings=%d",
		res.Ranking, res.QuestionsAsked, res.Resolved, res.Orderings)
	wantRanking := []int{4, 3, 2}
	wantQuestions := 10
	if res.Resolved || res.Orderings != 120 {
		t.Fatalf("resolved=%v orderings=%d, want an unresolved 120-leaf tree", res.Resolved, res.Orderings)
	}
	if res.QuestionsAsked != wantQuestions {
		t.Fatalf("questions = %d, want %d", res.QuestionsAsked, wantQuestions)
	}
	for i := range wantRanking {
		if res.Ranking[i] != wantRanking[i] {
			t.Fatalf("ranking = %v, want %v", res.Ranking, wantRanking)
		}
	}
}
