package crowdtopk

import (
	"errors"
	"fmt"
	"math/rand"

	"crowdtopk/internal/bridge"
	"crowdtopk/internal/crowd"
	"crowdtopk/internal/dist"
	"crowdtopk/internal/engine"
	"crowdtopk/internal/rank"
	"crowdtopk/internal/tpo"
	"crowdtopk/internal/uncertainty"
)

// init wires the bridge hooks that let the sibling public package
// crowdtopk/sdk unwrap a Dataset without this package exporting its
// internals.
func init() {
	bridge.DatasetDists = func(ds any) []dist.Distribution {
		if d, ok := ds.(*Dataset); ok && d != nil {
			return d.dists
		}
		return nil
	}
	bridge.DatasetNames = func(ds any) []string {
		if d, ok := ds.(*Dataset); ok && d != nil {
			return d.names
		}
		return nil
	}
}

// Uncertain is an uncertain tuple score: a bounded continuous distribution.
// Construct one with UniformScore, GaussianScore, TriangularScore,
// HistogramScore, or provide any internal distribution via the dataset
// helpers. A score built from invalid parameters carries the construction
// error (see Err); NewDataset surfaces it wrapped in ErrInvalidScore.
type Uncertain struct {
	d   dist.Distribution
	err error
}

// UniformScore models a score known to lie in [center−width/2, center+width/2].
func UniformScore(center, width float64) Uncertain {
	u, err := dist.NewUniformAround(center, width)
	if err != nil {
		return Uncertain{err: err}
	}
	return Uncertain{d: u}
}

// GaussianScore models a score with mean mu and standard deviation sigma
// (support truncated at ±4σ).
func GaussianScore(mu, sigma float64) Uncertain {
	g, err := dist.NewGaussian(mu, sigma)
	if err != nil {
		return Uncertain{err: err}
	}
	return Uncertain{d: g}
}

// TriangularScore models a score on [lo, hi] with the given mode.
func TriangularScore(lo, mode, hi float64) Uncertain {
	t, err := dist.NewTriangular(lo, mode, hi)
	if err != nil {
		return Uncertain{err: err}
	}
	return Uncertain{d: t}
}

// HistogramScore models a score as a histogram: edges (len = bins+1) and
// non-negative bin weights.
func HistogramScore(edges, weights []float64) Uncertain {
	p, err := dist.NewPiecewiseUniform(edges, weights)
	if err != nil {
		return Uncertain{err: err}
	}
	return Uncertain{d: p}
}

// Valid reports whether the score was constructed successfully.
func (u Uncertain) Valid() bool { return u.d != nil }

// Err returns why construction failed (nil for valid scores and for zero
// Uncertain values that were never constructed).
func (u Uncertain) Err() error { return u.err }

// Mean returns the expected score (0 for invalid scores).
func (u Uncertain) Mean() float64 {
	if u.d == nil {
		return 0
	}
	return u.d.Mean()
}

// Dataset is a relation of tuples with uncertain scores.
type Dataset struct {
	dists []dist.Distribution
	names []string
}

// ErrInvalidScore reports an Uncertain constructed from invalid parameters.
var ErrInvalidScore = errors.New("crowdtopk: invalid uncertain score")

// NewDataset builds a dataset from uncertain scores. Tuple ids are the slice
// indices.
func NewDataset(scores []Uncertain) (*Dataset, error) {
	if len(scores) == 0 {
		return nil, fmt.Errorf("crowdtopk: empty dataset")
	}
	ds := &Dataset{dists: make([]dist.Distribution, len(scores))}
	for i, s := range scores {
		if s.d == nil {
			if s.err != nil {
				return nil, fmt.Errorf("%w at index %d: %v", ErrInvalidScore, i, s.err)
			}
			return nil, fmt.Errorf("%w at index %d: zero Uncertain (not built by a Score constructor)", ErrInvalidScore, i)
		}
		ds.dists[i] = s.d
	}
	return ds, nil
}

// SetNames attaches human-readable tuple names (for Result rendering).
func (d *Dataset) SetNames(names []string) error {
	if len(names) != len(d.dists) {
		return fmt.Errorf("crowdtopk: %d names for %d tuples", len(names), len(d.dists))
	}
	d.names = append([]string(nil), names...)
	return nil
}

// Len returns the number of tuples.
func (d *Dataset) Len() int { return len(d.dists) }

// Name returns the tuple's name (its id when unnamed).
func (d *Dataset) Name(id int) string {
	if d.names != nil && id >= 0 && id < len(d.names) {
		return d.names[id]
	}
	return fmt.Sprintf("t%d", id)
}

// Question asks whether tuple I ranks above tuple J.
type Question struct {
	I, J int
}

// Answer replies to a Question: Yes means I ranks above J.
type Answer struct {
	Q   Question
	Yes bool
}

// Crowd answers comparison questions. Reliability is the probability an
// answer is correct: 1 lets the engine prune orderings outright, lower
// values trigger the Bayesian reweighting of the paper's noisy-worker model.
type Crowd interface {
	Ask(q Question) Answer
	Reliability() float64
}

// Algorithm names a question-selection strategy.
type Algorithm string

// Supported algorithms (see DESIGN.md for the paper mapping).
const (
	Random     Algorithm = engine.AlgRandom
	Naive      Algorithm = engine.AlgNaive
	TBOff      Algorithm = engine.AlgTBOff
	COff       Algorithm = engine.AlgCOff
	AStarOff   Algorithm = engine.AlgAStarOff
	T1On       Algorithm = engine.AlgT1On
	AStarOn    Algorithm = engine.AlgAStarOn
	Incr       Algorithm = engine.AlgIncr
	Exhaustive Algorithm = engine.AlgExhaustive
)

// MeasureName selects an uncertainty measure.
type MeasureName string

// Supported measures.
const (
	MeasureEntropy         MeasureName = "H"
	MeasureWeightedEntropy MeasureName = "Hw"
	MeasureORA             MeasureName = "ORA"
	// MeasureORAFootrule is U_ORA with the footrule-optimal aggregation (a
	// polynomial-time 2-approximation of the Kemeny median) as the
	// representative — the scalable variant for trees over many tuples.
	MeasureORAFootrule MeasureName = "ORA-FR"
	MeasureMPO         MeasureName = "MPO"
)

// Query configures top-K processing.
type Query struct {
	// K is the result size; Budget the maximum number of crowd questions.
	K, Budget int
	// Algorithm defaults to T1On (the paper's best cost/quality tradeoff
	// for interactive use).
	Algorithm Algorithm
	// Measure defaults to MeasureMPO.
	Measure MeasureName
	// RoundSize is the questions-per-round of the incr algorithm.
	RoundSize int
	// GridSize, MaxOrderings and Seed tune the numerical substrate.
	GridSize     int
	MaxOrderings int
	Seed         int64
	// Workers is the number of goroutines used for tree construction
	// (0 = all CPUs, 1 = sequential). The result is identical either way;
	// crowd questions are always asked one at a time.
	Workers int
}

// Result reports the processed query.
type Result struct {
	// Ranking is the representative top-K ordering (tuple ids, best
	// first): the single surviving ordering when Resolved, otherwise the
	// measure's representative (MPO or ORA).
	Ranking []int
	// Names is Ranking rendered through the dataset's tuple names.
	Names []string
	// Resolved reports whether a unique ordering remained.
	Resolved bool
	// QuestionsAsked counts crowd tasks consumed.
	QuestionsAsked int
	// Orderings is the number of orderings still possible.
	Orderings int
	// Uncertainty is the residual uncertainty under the query's measure.
	Uncertainty float64
}

// crowdAdapter bridges the public Crowd to the internal interface.
type crowdAdapter struct{ c Crowd }

func (a crowdAdapter) Ask(q tpo.Question) tpo.Answer {
	ans := a.c.Ask(Question{I: q.I, J: q.J})
	return tpo.Answer{Q: q, Yes: ans.Yes}
}

func (a crowdAdapter) Reliability() float64 { return a.c.Reliability() }

// Process answers a top-K query over the dataset, asking cr up to
// query.Budget questions.
func Process(d *Dataset, query Query, cr Crowd) (*Result, error) {
	if d == nil || d.Len() == 0 {
		return nil, fmt.Errorf("crowdtopk: nil or empty dataset")
	}
	if cr == nil {
		return nil, fmt.Errorf("crowdtopk: nil crowd")
	}
	if query.Algorithm == "" {
		query.Algorithm = T1On
	}
	if query.Measure == "" {
		query.Measure = MeasureMPO
	}
	m, err := uncertainty.New(string(query.Measure))
	if err != nil {
		return nil, err
	}
	cfg := engine.Config{
		Dists:     d.dists,
		K:         query.K,
		Budget:    query.Budget,
		Algorithm: string(query.Algorithm),
		Measure:   m,
		Crowd:     crowdAdapter{cr},
		// The engine only samples a world when it must simulate its own
		// crowd; with an external crowd the truth is never consulted, but
		// provide one anyway so diagnostics (distances) are meaningful in
		// simulations.
		Truth:     nil,
		RoundSize: query.RoundSize,
		Build: tpo.BuildOptions{
			GridSize:  query.GridSize,
			MaxLeaves: query.MaxOrderings,
			Workers:   query.Workers,
		},
		Seed:    query.Seed,
		Workers: query.Workers,
	}
	res, err := engine.Run(cfg)
	if err != nil {
		return nil, err
	}
	out := &Result{
		Ranking:        append([]int(nil), res.FinalOrdering...),
		Resolved:       res.Resolved,
		QuestionsAsked: res.Asked,
		Orderings:      res.FinalLeaves,
		Uncertainty:    res.FinalUncertainty,
	}
	out.Names = make([]string, len(out.Ranking))
	for i, id := range out.Ranking {
		out.Names[i] = d.Name(id)
	}
	return out, nil
}

// SimulatedCrowd builds a Crowd of simulated workers over a sampled world:
// workers answer correctly with probability accuracy, and each question is
// answered by `votes` workers with majority aggregation. votes must be at
// least 1; even counts are rounded up to the next odd number so the majority
// can never tie (and the crowd's reported Reliability matches the panel it
// actually convenes). It returns the crowd and the sampled ground-truth
// ranking (for evaluating results).
func SimulatedCrowd(d *Dataset, accuracy float64, votes int, seed int64) (Crowd, []int, error) {
	if votes < 1 {
		return nil, nil, fmt.Errorf("crowdtopk: votes = %d, need at least 1 worker answer per question", votes)
	}
	rng := rand.New(rand.NewSource(seed))
	truth := crowd.SampleTruth(d.dists, rng)
	if accuracy >= 1 && votes <= 1 {
		return simCrowd{&crowd.PerfectOracle{Truth: truth}}, truth.Real, nil
	}
	pf, err := crowd.NewUniformPlatform(truth, 16, accuracy, rng)
	if err != nil {
		return nil, nil, err
	}
	if votes > 1 {
		pf.Votes = votes
	}
	return simCrowd{pf}, truth.Real, nil
}

// simCrowd adapts the internal crowd to the public interface.
type simCrowd struct{ c crowd.Crowd }

func (s simCrowd) Ask(q Question) Answer {
	a := s.c.Ask(tpo.NewQuestion(q.I, q.J))
	// Re-express the answer relative to the caller's (I, J) orientation.
	yes := a.Higher() == q.I
	return Answer{Q: q, Yes: yes}
}

func (s simCrowd) Reliability() float64 { return s.c.Reliability() }

// ExpectedRanking returns the tuples ordered by expected score — the answer
// a system would give ignoring uncertainty entirely. Useful as a baseline.
func (d *Dataset) ExpectedRanking() []int { return dist.MeanRanking(d.dists) }

// Conditioned returns a new dataset whose marginal score beliefs are
// refined by a trusted answer "winner ranks above loser": the winner's
// distribution is truncated below the loser's minimum possible score and
// the loser's above the winner's maximum. This goes beyond the paper's
// tree pruning (an extension noted in DESIGN.md §5): subsequent queries on
// the returned dataset start from tighter score beliefs. The receiver is
// unchanged.
func (d *Dataset) Conditioned(winner, loser int) (*Dataset, error) {
	if winner < 0 || winner >= d.Len() || loser < 0 || loser >= d.Len() || winner == loser {
		return nil, fmt.Errorf("crowdtopk: invalid conditioning pair (%d, %d)", winner, loser)
	}
	w, l, err := dist.ConditionOnOrder(d.dists[winner], d.dists[loser])
	if err != nil {
		return nil, err
	}
	out := &Dataset{dists: append([]dist.Distribution(nil), d.dists...)}
	if d.names != nil {
		out.names = append([]string(nil), d.names...)
	}
	out.dists[winner] = w
	out.dists[loser] = l
	return out, nil
}

// PossibleOrderings materializes the TPO and returns every possible top-K
// ordering with its probability, for inspection and visualization.
func (d *Dataset) PossibleOrderings(k int, seed int64) ([][]int, []float64, error) {
	tree, err := tpo.Build(d.dists, k, tpo.BuildOptions{})
	if err != nil {
		return nil, nil, err
	}
	ls := tree.LeafSet()
	paths := make([][]int, ls.Len())
	for i, p := range ls.Paths {
		paths[i] = append([]int(nil), p...)
	}
	return paths, append([]float64(nil), ls.W...), nil
}

// RankDistance returns the normalized generalized Kendall tau distance
// between two top-k lists (0 identical, 1 disjoint) — the paper's quality
// metric, exposed for applications that evaluate results.
func RankDistance(a, b []int) float64 {
	return rank.KendallTopKNormalized(rank.Ordering(a), rank.Ordering(b), rank.DefaultPenalty)
}
