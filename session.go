package crowdtopk

import (
	"fmt"
	"io"

	"crowdtopk/internal/session"
	"crowdtopk/internal/tpo"
)

// SessionState is a session lifecycle phase.
type SessionState string

// Session states. Converged and Exhausted are terminal: the session will
// accept no further answers.
const (
	SessionCreated         SessionState = SessionState(session.Created)
	SessionAwaitingAnswers SessionState = SessionState(session.AwaitingAnswers)
	SessionConverged       SessionState = SessionState(session.Converged)
	SessionExhausted       SessionState = SessionState(session.Exhausted)
)

// Terminal reports whether the session will accept no further answers.
func (s SessionState) Terminal() bool { return session.State(s).Terminal() }

// Session errors, for errors.Is.
var (
	// ErrSessionDone reports an answer submitted to a terminal session.
	ErrSessionDone = session.ErrDone
	// ErrUnknownQuestion reports an answer to a question the session has
	// not issued (or has already accepted an answer for).
	ErrUnknownQuestion = session.ErrUnknownQuestion
)

// Session is the asynchronous counterpart of Process: instead of blocking on
// a Crowd callback, it hands out the currently best questions
// (NextQuestions) and absorbs answers whenever the crowd returns them
// (SubmitAnswer) — out of band, minutes or hours later. Result reports the
// current top-K belief at any time, and Checkpoint/RestoreSession round-trip
// the whole query state through a versioned JSON envelope so it survives
// process restarts. Sessions driven to completion return exactly the result
// Process would for the same configuration and answers: both paths run the
// same transition code.
//
// All methods are safe for concurrent use.
type Session struct {
	inner *session.Session
}

// NewSession starts an asynchronous top-K query over the dataset.
// reliability is the probability a submitted answer is correct (the public
// Crowd interface's Reliability): 1 — and, for convenience, 0 — trusts
// answers outright, values in (0, 1) apply the paper's Bayesian
// reweighting.
func NewSession(d *Dataset, query Query, reliability float64) (*Session, error) {
	if d == nil || d.Len() == 0 {
		return nil, fmt.Errorf("crowdtopk: nil or empty dataset")
	}
	if query.Algorithm == "" {
		query.Algorithm = T1On
	}
	if query.Measure == "" {
		query.Measure = MeasureMPO
	}
	inner, err := session.New(session.Config{
		Dists:       d.dists,
		Names:       d.names,
		K:           query.K,
		Budget:      query.Budget,
		Algorithm:   string(query.Algorithm),
		Measure:     string(query.Measure),
		Reliability: reliability,
		RoundSize:   query.RoundSize,
		Seed:        query.Seed,
		Build: tpo.BuildOptions{
			GridSize:  query.GridSize,
			MaxLeaves: query.MaxOrderings,
			Workers:   query.Workers,
		},
	})
	if err != nil {
		return nil, err
	}
	return &Session{inner: inner}, nil
}

// RestoreSession resumes a session from a Checkpoint stream — in this
// process or any other. The checkpoint is self-contained (dataset, tuple
// names, configuration, answer log, conditioned orderings, RNG position)
// and verified against its recorded schema version and dataset digest; a
// mismatch fails with a typed error instead of silently mis-resuming.
func RestoreSession(r io.Reader) (*Session, error) {
	inner, err := session.Restore(r, nil)
	if err != nil {
		return nil, err
	}
	return &Session{inner: inner}, nil
}

// State returns the current lifecycle state.
func (s *Session) State() SessionState { return SessionState(s.inner.State()) }

// NextQuestions returns up to n pending questions for the crowd (n < 1
// returns all pending). The call is idempotent: questions stay pending
// until answered, so a crashed client pulls the same work again. Online
// strategies (T1On, AStarOn) expose one question at a time — the next best
// question is only defined once the previous answer conditioned the
// orderings. A terminal session returns an empty slice.
func (s *Session) NextQuestions(n int) ([]Question, error) {
	qs, _, err := s.inner.NextQuestions(n)
	if err != nil {
		return nil, err
	}
	out := make([]Question, len(qs))
	for i, q := range qs {
		out[i] = Question{I: q.I, J: q.J}
	}
	return out, nil
}

// SubmitAnswer accepts one crowd answer for a currently pending question,
// in either orientation of the pair. Answers to questions the session has
// not issued (or already accepted) fail with an error wrapping
// ErrUnknownQuestion; answers after termination fail with one wrapping
// ErrSessionDone.
func (s *Session) SubmitAnswer(a Answer) error {
	return s.inner.SubmitAnswer(tpo.Answer{Q: tpo.Question{I: a.Q.I, J: a.Q.J}, Yes: a.Yes})
}

// Result reports the current top-K belief. It is valid in every state:
// mid-query it reflects the answers absorbed so far.
func (s *Session) Result() *Result {
	res := s.inner.Result()
	out := &Result{
		Ranking:        append([]int(nil), res.Ranking...),
		Resolved:       res.Resolved,
		QuestionsAsked: res.Asked,
		Orderings:      res.Orderings,
		Uncertainty:    res.Uncertainty,
	}
	out.Names = make([]string, len(out.Ranking))
	for i, id := range out.Ranking {
		out.Names[i] = s.inner.Name(id)
	}
	return out
}

// Checkpoint writes the full session state as a versioned JSON envelope.
func (s *Session) Checkpoint(w io.Writer) error { return s.inner.Checkpoint(w) }
